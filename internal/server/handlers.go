package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/experiments"
	"paragonio/internal/faults"
	"paragonio/internal/pablo"
	"paragonio/internal/policy"
)

// SimulateRequest is the body of POST /v1/simulate and /v1/advise: one
// what-if configuration. Zero fields mean the paper's machine.
type SimulateRequest struct {
	App     string `json:"app"`               // "escat" or "prism"
	Dataset string `json:"dataset,omitempty"` // escat: "ethylene" (default) or "co"
	Version string `json:"version"`           // escat: A A2 B1 B2 B3 B C; prism: A B C

	Seed       int64 `json:"seed,omitempty"`        // workload seed (default 1)
	IONodes    int   `json:"ionodes,omitempty"`     // I/O node count override
	StripeUnit int64 `json:"stripe_unit,omitempty"` // PFS stripe unit override, bytes
	Shards     int   `json:"shards,omitempty"`      // sharded-kernel lane count
	WindowUS   int64 `json:"window_us,omitempty"`   // sync-window width, µs
	SampleMS   int64 `json:"sample_ms,omitempty"`   // utilization sample period, ms

	Tiers *TiersRequest `json:"tiers,omitempty"`

	// Faults schedules deterministic fault injection (internal/faults):
	// the run executes on a machine that degrades at the given instants.
	// Empty means the healthy machine. The plan is part of the content
	// address, so degraded results never collide with healthy ones.
	Faults []FaultRequest `json:"faults,omitempty"`

	// SDDF, on /v1/simulate, streams the run's SDDF event trace as
	// text instead of the JSON summary. SDDF responses bypass the
	// result cache (they are bulky and cheap to regenerate from a
	// cached config decision is deliberate) but not admission control.
	SDDF bool `json:"sddf,omitempty"`
}

// FaultRequest is one injected fault. Kind selects which other fields
// apply (see internal/faults for the per-kind contract): disk-fail and
// node-crash take ionode (+ until_ms for a repaired drive); straggler
// takes ionode and factor; client-flap takes node, and optionally
// period_ms + count for a recall storm.
type FaultRequest struct {
	Kind     string  `json:"kind"`
	AtMS     int64   `json:"at_ms,omitempty"`
	UntilMS  int64   `json:"until_ms,omitempty"`
	IONode   int     `json:"ionode,omitempty"`
	Node     int     `json:"node,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	PeriodMS int64   `json:"period_ms,omitempty"`
	Count    int     `json:"count,omitempty"`
}

// TiersRequest selects the what-if cache hierarchy.
type TiersRequest struct {
	IONode *IONodeTierRequest `json:"ionode,omitempty"`
	Client *ClientTierRequest `json:"client,omitempty"`
	Log    *LogTierRequest    `json:"log,omitempty"`
}

// IONodeTierRequest configures the I/O-node buffer cache tier.
type IONodeTierRequest struct {
	WriteBehind     bool  `json:"write_behind,omitempty"`
	ReadAhead       int   `json:"read_ahead,omitempty"`
	CapacityBytes   int64 `json:"capacity_bytes,omitempty"`
	FlushDeadlineMS int64 `json:"flush_deadline_ms,omitempty"`
}

// ClientTierRequest configures the lease-coherent client cache tier.
type ClientTierRequest struct {
	CapacityBytes int64 `json:"capacity_bytes,omitempty"`
	LeaseTTLMS    int64 `json:"lease_ttl_ms,omitempty"`
}

// LogTierRequest configures the per-compute-node log-structured write
// buffer. `{}` selects the documented defaults (8 MB capacity, 1 MB
// segments, 50 ms drain deadline).
type LogTierRequest struct {
	CapacityBytes   int64 `json:"capacity_bytes,omitempty"`
	SegmentBytes    int64 `json:"segment_bytes,omitempty"`
	DrainBatch      int   `json:"drain_batch,omitempty"`
	DrainDeadlineMS int64 `json:"drain_deadline_ms,omitempty"`
}

// SimulateResponse is the JSON summary of one run.
type SimulateResponse struct {
	Hash    string `json:"hash"`
	Cached  bool   `json:"cached"`
	App     string `json:"app"`
	Dataset string `json:"dataset,omitempty"`
	Version string `json:"version"`
	Nodes   int    `json:"nodes"`

	ExecSeconds   float64 `json:"exec_seconds"`
	IOTimeSeconds float64 `json:"io_time_seconds"`
	IOPercent     float64 `json:"io_percent"`
	Events        int     `json:"events"`
	Digest        string  `json:"digest"` // FNV-1a trace digest, %#016x

	Shares  []ShareRow `json:"io_time_by_op"`
	Phases  []PhaseRow `json:"phases"`
	Balance Balance    `json:"ionode_balance"`

	Cache   *cache.Stats       `json:"cache,omitempty"`   // I/O-node tier totals
	Client  *cache.ClientStats `json:"client,omitempty"`  // client tier totals
	Log     *cache.LogStats    `json:"log,omitempty"`     // log tier totals
	Samples []SampleRow        `json:"samples,omitempty"` // utilization samples
}

// ShareRow is one operation's share of aggregate I/O time (Tables 2/5).
type ShareRow struct {
	Op           string  `json:"op"`
	Percent      float64 `json:"percent"`
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

// PhaseRow is one application phase's I/O activity.
type PhaseRow struct {
	Name          string  `json:"name"`
	StartSeconds  float64 `json:"start_seconds"`
	EndSeconds    float64 `json:"end_seconds"`
	Ops           int     `json:"ops"`
	IOTimeSeconds float64 `json:"io_time_seconds"`
	BytesRead     int64   `json:"bytes_read"`
	BytesWritten  int64   `json:"bytes_written"`
}

// Balance summarizes load balance across I/O nodes.
type Balance struct {
	IONodes     int     `json:"ionodes"`
	TotalBytes  int64   `json:"total_bytes"`
	MaxOverMean float64 `json:"hot_spot_factor"`
	BytesCV     float64 `json:"bytes_cv"`
	Idle        int     `json:"idle"`
}

// SampleRow is one utilization snapshot (SampleMS > 0).
type SampleRow struct {
	TSeconds   float64 `json:"t_seconds"`
	MetaQueue  int     `json:"meta_queue"`
	TokenQueue int     `json:"token_queue"`
	MaxIOQueue int     `json:"max_io_queue"`
}

// AdviseResponse is the body of POST /v1/advise.
type AdviseResponse struct {
	Hash    string `json:"hash"`
	Cached  bool   `json:"cached"`
	App     string `json:"app"`
	Version string `json:"version"`
	Advice  string `json:"advice"` // rendered advisor report
}

// apiError is the JSON error envelope: every error response, on every
// endpoint, is {"error": {"code": ..., "message": ..., "field": ...}}.
type apiError struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the structured error payload.
type ErrorBody struct {
	// Code is a stable machine-readable identifier; the full catalog is
	// the ErrCode constants below.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Field names the request field a validation failure is about
	// (empty on errors that are not about one field).
	Field string `json:"field,omitempty"`
}

// The error-code catalog. Codes are part of the API contract: clients
// dispatch on them, so they never change meaning.
const (
	ErrCodeBadJSON        = "bad_json"        // 400: body is not valid JSON for the endpoint
	ErrCodeInvalidRequest = "invalid_request" // 400: a field failed validation
	ErrCodeQueueFull      = "queue_full"      // 429: admission queue full, retry later
	ErrCodeTimeout        = "timeout"         // 504: run exceeded the server deadline
	ErrCodeCancelled      = "cancelled"       // 503: run cancelled (shutdown or client gone)
	ErrCodeRunFailed      = "run_failed"      // 422: the engine rejected the configuration
	ErrCodeNotFound       = "not_found"       // 404: no such cached result
)

func writeError(w http.ResponseWriter, status int, code, field, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Field:   field,
	}})
}

// fieldError is a validation failure tied to the request field it names;
// handlers surface the field in the error envelope.
type fieldError struct {
	field string
	msg   string
}

func (e *fieldError) Error() string { return e.msg }

func fieldErrorf(field, format string, args ...any) error {
	return &fieldError{field: field, msg: fmt.Sprintf(format, args...)}
}

// writeValidationError renders a validate() failure, carrying the field
// name through when the error has one.
func writeValidationError(w http.ResponseWriter, err error) {
	var fe *fieldError
	if errors.As(err, &fe) {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fe.field, "%s", fe.msg)
		return
	}
	writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, "", "%v", err)
}

// runFunc executes one validated request; the default builds the real
// application run, tests substitute stubs.
type runFunc func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error)

func defaultRun(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
	switch req.App {
	case "escat":
		ds, _ := escatDataset(req.Dataset)
		v, _ := escatVersion(req.Version, req.Dataset)
		return escat.RunOnContext(ctx, cfg, ds, v)
	case "prism":
		v, _ := prismVersion(req.Version)
		return prism.RunOnContext(ctx, cfg, prism.TestProblem(), v)
	}
	return nil, fmt.Errorf("server: unknown app %q", req.App)
}

// validate normalizes the request and rejects anything defaultRun could
// not execute, so handler-side validation and run-side dispatch agree.
func (r *SimulateRequest) validate() error {
	r.App = strings.ToLower(r.App)
	r.Dataset = strings.ToLower(r.Dataset)
	if r.Seed == 0 {
		r.Seed = 1
	}
	switch r.App {
	case "escat":
		if r.Dataset == "" {
			r.Dataset = "ethylene"
		}
		if _, ok := escatDataset(r.Dataset); !ok {
			return fieldErrorf("dataset", "unknown escat dataset %q (want ethylene or co)", r.Dataset)
		}
		if _, ok := escatVersion(r.Version, r.Dataset); !ok {
			return fieldErrorf("version", "unknown escat version %q (want A, A2, B1, B2, B3, B, or C)", r.Version)
		}
	case "prism":
		if r.Dataset != "" {
			return fieldErrorf("dataset", "prism takes no dataset (got %q)", r.Dataset)
		}
		if _, ok := prismVersion(r.Version); !ok {
			return fieldErrorf("version", "unknown prism version %q (want A, B, or C)", r.Version)
		}
	case "":
		return fieldErrorf("app", "missing app (want escat or prism)")
	default:
		return fieldErrorf("app", "unknown app %q (want escat or prism)", r.App)
	}
	if r.Shards < 0 {
		return fieldErrorf("shards", "shards must be non-negative, got %d", r.Shards)
	}
	if r.IONodes < 0 {
		return fieldErrorf("ionodes", "ionodes must be non-negative, got %d", r.IONodes)
	}
	if r.StripeUnit < 0 {
		return fieldErrorf("stripe_unit", "stripe_unit must be non-negative, got %d", r.StripeUnit)
	}
	if r.WindowUS < 0 {
		return fieldErrorf("window_us", "window_us must be non-negative, got %d", r.WindowUS)
	}
	if r.SampleMS < 0 {
		return fieldErrorf("sample_ms", "sample_ms must be non-negative, got %d", r.SampleMS)
	}
	ionodes := r.IONodes
	if ionodes == 0 {
		ionodes = 16 // the paper machine core.Config defaults to
	}
	if err := r.faultsPlan().Validate(ionodes); err != nil {
		return fieldErrorf("faults", "%v", err)
	}
	return nil
}

// faultsPlan maps the request's faults block onto the engine's plan.
func (r *SimulateRequest) faultsPlan() faults.Plan {
	if len(r.Faults) == 0 {
		return faults.Plan{}
	}
	fs := make([]faults.Fault, len(r.Faults))
	for i, f := range r.Faults {
		fs[i] = faults.Fault{
			Kind:   faults.Kind(f.Kind),
			At:     time.Duration(f.AtMS) * time.Millisecond,
			Until:  time.Duration(f.UntilMS) * time.Millisecond,
			IONode: f.IONode,
			Node:   f.Node,
			Factor: f.Factor,
			Period: time.Duration(f.PeriodMS) * time.Millisecond,
			Count:  f.Count,
		}
	}
	return faults.Plan{Faults: fs}
}

// config maps the validated request onto a core.Config.
func (r *SimulateRequest) config() core.Config {
	cfg := core.Config{
		Seed:           r.Seed,
		IONodes:        r.IONodes,
		StripeUnit:     r.StripeUnit,
		Shards:         r.Shards,
		Window:         time.Duration(r.WindowUS) * time.Microsecond,
		SampleInterval: time.Duration(r.SampleMS) * time.Millisecond,
		Faults:         r.faultsPlan(),
	}
	if t := r.Tiers; t != nil {
		if io := t.IONode; io != nil {
			cfg.Tiers.IONode = &cache.Config{
				WriteBehind:   io.WriteBehind,
				ReadAhead:     io.ReadAhead,
				CapacityBytes: io.CapacityBytes,
				FlushDeadline: time.Duration(io.FlushDeadlineMS) * time.Millisecond,
			}
		}
		if cl := t.Client; cl != nil {
			cfg.Tiers.Client = &cache.ClientConfig{
				CapacityBytes: cl.CapacityBytes,
				LeaseTTL:      time.Duration(cl.LeaseTTLMS) * time.Millisecond,
			}
		}
		if lg := t.Log; lg != nil {
			cfg.Tiers.Log = &cache.LogConfig{
				CapacityBytes: lg.CapacityBytes,
				SegmentBytes:  lg.SegmentBytes,
				DrainBatch:    lg.DrainBatch,
				DrainDeadline: time.Duration(lg.DrainDeadlineMS) * time.Millisecond,
			}
		}
	}
	return cfg
}

// identity is the run-identity string hashed into the content address.
func (r *SimulateRequest) identity() string {
	if r.Dataset != "" {
		return r.App + "/" + r.Dataset + "/" + r.Version
	}
	return r.App + "/" + r.Version
}

func escatDataset(name string) (escat.Dataset, bool) {
	switch name {
	case "ethylene":
		return escat.Ethylene(), true
	case "co", "carbon-monoxide":
		return escat.CarbonMonoxide(), true
	}
	return escat.Dataset{}, false
}

func escatVersion(id, dataset string) (escat.Version, bool) {
	if dataset == "co" || dataset == "carbon-monoxide" {
		if strings.EqualFold(id, "C") {
			return escat.VersionCCarbonMonoxide(), true
		}
	}
	for _, v := range escat.Progressions() {
		if strings.EqualFold(v.ID, id) {
			return v, true
		}
	}
	switch strings.ToUpper(id) {
	case "B":
		return escat.VersionB(), true
	case "C":
		return escat.VersionC(), true
	}
	return escat.Version{}, false
}

func prismVersion(id string) (prism.Version, bool) {
	for _, v := range prism.PaperVersions() {
		if strings.EqualFold(v.ID, id) {
			return v, true
		}
	}
	return prism.Version{}, false
}

// flight is one in-flight run that identical concurrent requests join.
// refs counts attached waiters; when the last one disconnects the run
// is cancelled — nobody is listening for the answer.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int

	body      []byte // response body served to waiters (cached=false)
	cacheBody []byte // variant stored in the result cache (cached=true)
	err       error
}

// joinFlight returns the flight for key, creating it (and starting
// produce on a daemon-owned context) if none is running. The boolean
// reports whether the caller is joining an existing flight.
func (s *Server) joinFlight(key string, produce func(ctx context.Context) ([]byte, []byte, error)) (*flight, bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if f, ok := s.flights[key]; ok {
		f.refs++
		return f, true
	}
	// The run context is daemon-owned, not the leader's request
	// context: late joiners must survive the leader disconnecting.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	s.flights[key] = f
	go func() {
		defer cancel()
		f.body, f.cacheBody, f.err = produce(ctx)
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
	}()
	return f, false
}

// leaveFlight detaches one waiter; the last one out cancels the run.
func (s *Server) leaveFlight(f *flight) {
	s.flightMu.Lock()
	f.refs--
	if f.refs == 0 {
		f.cancel()
	}
	s.flightMu.Unlock()
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadJSON, "", "bad request body: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeValidationError(w, err)
		return
	}
	cfg := req.config()
	key := experiments.ConfigKey(cfg, req.identity())

	if req.SDDF {
		s.streamSDDF(w, r, &req, cfg)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	client := clientID(r)
	f, joined := s.joinFlight(key, func(ctx context.Context) ([]byte, []byte, error) {
		res, err := s.admitAndRunAs(ctx, client, KindInteractive, &req, cfg)
		if err != nil {
			return nil, nil, err
		}
		resp := buildSimulateResponse(&req, key, res)
		res.Trace.Release() // response built; recycle the event buffer
		return marshalPair(resp, &resp.Cached)
	})
	if joined {
		s.coalesced.Inc()
	}
	s.finishFlight(w, r, key, f)
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadJSON, "", "bad request body: %v", err)
		return
	}
	if req.SDDF {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, "sddf",
			"sddf streaming is a /v1/simulate option")
		return
	}
	if err := req.validate(); err != nil {
		writeValidationError(w, err)
		return
	}
	cfg := req.config()
	key := "advise/" + experiments.ConfigKey(cfg, req.identity())

	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	client := clientID(r)
	f, joined := s.joinFlight(key, func(ctx context.Context) ([]byte, []byte, error) {
		res, err := s.admitAndRunAs(ctx, client, KindInteractive, &req, cfg)
		if err != nil {
			return nil, nil, err
		}
		var advice bytes.Buffer
		err = policy.WriteAdvice(&advice, policy.Classify(res.Trace),
			policy.Options{}, policy.CacheOptions{})
		res.Trace.Release() // advice rendered; recycle the event buffer
		if err != nil {
			return nil, nil, err
		}
		resp := &AdviseResponse{
			Hash:    key,
			App:     req.App,
			Version: res.Version,
			Advice:  advice.String(),
		}
		return marshalPair(resp, &resp.Cached)
	})
	if joined {
		s.coalesced.Inc()
	}
	s.finishFlight(w, r, key, f)
}

// finishFlight waits for a flight (or the client's departure) and
// renders its outcome.
func (s *Server) finishFlight(w http.ResponseWriter, r *http.Request, key string, f *flight) {
	select {
	case <-f.done:
	case <-r.Context().Done():
		s.leaveFlight(f)
		return // client gone; nothing to write
	}
	s.leaveFlight(f)
	if f.err != nil {
		s.writeRunError(w, f.err)
		return
	}
	if f.cacheBody != nil {
		s.cache.Put(key, f.cacheBody)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(f.body)
}

// writeRunError maps a failed run onto an HTTP status.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter(s.cfg.Timeout))
		writeError(w, http.StatusTooManyRequests, ErrCodeQueueFull, "", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, ErrCodeTimeout, "",
			"simulation exceeded the %s run deadline", s.cfg.Timeout)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, ErrCodeCancelled, "",
			"simulation cancelled: %v", err)
	default:
		writeError(w, http.StatusUnprocessableEntity, ErrCodeRunFailed, "",
			"simulation failed: %v", err)
	}
}

// retryAfter suggests a retry delay proportional to the run deadline,
// clamped to [1s, 60s].
func retryAfter(timeout time.Duration) string {
	d := timeout / 10
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return fmt.Sprintf("%d", int(d.Seconds()))
}

// admitAndRun passes admission control as an anonymous interactive
// client and executes the run.
func (s *Server) admitAndRun(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
	return s.admitAndRunAs(ctx, "", KindInteractive, req, cfg)
}

// admitAndRunAs passes admission control under a client identity and
// request kind (for fair-share scheduling) and executes the run.
func (s *Server) admitAndRunAs(ctx context.Context, client, kind string, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
	release, err := s.adm.AcquireAs(ctx, client, kind, s.adm.Cost(cfg.Shards))
	if err != nil {
		return nil, err
	}
	defer release()
	if !cfg.Faults.Empty() {
		s.faultRuns.Inc()
	}
	start := time.Now()
	res, err := s.runSim(ctx, req, cfg)
	s.runSeconds.Observe(time.Since(start).Seconds())
	return res, err
}

// streamSDDF runs the simulation and streams the SDDF trace as text.
// It honors admission control but bypasses the result cache.
func (s *Server) streamSDDF(w http.ResponseWriter, r *http.Request, req *SimulateRequest, cfg core.Config) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	res, err := s.admitAndRun(ctx, req, cfg)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	err = pablo.WriteTrace(w, res.Trace)
	res.Trace.Release() // trace streamed; recycle the event buffer
	if err != nil {
		// Headers are gone; the broken body is the best signal left.
		return
	}
}

// marshalPair renders a response twice — once as returned to live
// waiters (cached=false) and once as stored in the result cache
// (cached=true) — by flipping the response's Cached field in place.
func marshalPair(resp any, cached *bool) ([]byte, []byte, error) {
	*cached = false
	live, err := json.Marshal(resp)
	if err != nil {
		return nil, nil, err
	}
	*cached = true
	cacheBody, err := json.Marshal(resp)
	if err != nil {
		return nil, nil, err
	}
	return live, cacheBody, nil
}

func buildSimulateResponse(req *SimulateRequest, key string, res *core.Result) *SimulateResponse {
	resp := &SimulateResponse{
		Hash:          key,
		App:           req.App,
		Dataset:       req.Dataset,
		Version:       res.Version,
		Nodes:         res.Nodes,
		ExecSeconds:   res.Exec.Seconds(),
		IOTimeSeconds: res.IOTime().Seconds(),
		IOPercent:     res.IOPercent(),
		Events:        res.Trace.Len(),
		Digest:        fmt.Sprintf("%#016x", res.Trace.Digest()),
	}
	for _, sh := range analysis.IOTimeShares(res.Trace) {
		resp.Shares = append(resp.Shares, ShareRow{
			Op:           sh.Op.String(),
			Percent:      sh.Percent,
			Count:        sh.Count,
			TotalSeconds: sh.Total.Seconds(),
		})
	}
	for _, ph := range res.Phases {
		sub := analysis.SliceByPhase(res.Trace, ph)
		agg := pablo.AggregateByOp(sub)
		resp.Phases = append(resp.Phases, PhaseRow{
			Name:          ph.Name,
			StartSeconds:  ph.Start.Seconds(),
			EndSeconds:    ph.End.Seconds(),
			Ops:           agg.TotalCount(),
			IOTimeSeconds: agg.TotalDuration().Seconds(),
			BytesRead:     agg.BytesRead,
			BytesWritten:  agg.BytesWritten,
		})
	}
	b := analysis.IONodeBalance(res.IONodes)
	resp.Balance = Balance{
		IONodes:     b.IONodes,
		TotalBytes:  b.TotalBytes,
		MaxOverMean: b.MaxOverMean,
		BytesCV:     b.BytesCV,
		Idle:        b.Idle,
	}
	if res.Cache != nil {
		t := res.CacheTotals()
		resp.Cache = &t
	}
	if res.Client.Nodes > 0 {
		cl := res.Client
		resp.Client = &cl
	}
	if res.Log.Nodes > 0 {
		lg := res.Log
		resp.Log = &lg
	}
	for _, smp := range res.Samples {
		maxQ := 0
		for _, q := range smp.IONodeQueue {
			if q > maxQ {
				maxQ = q
			}
		}
		resp.Samples = append(resp.Samples, SampleRow{
			TSeconds:   smp.T.Seconds(),
			MetaQueue:  smp.MetaQueue,
			TokenQueue: smp.TokenQueue,
			MaxIOQueue: maxQ,
		})
	}
	return resp
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	rows := []row{}
	for _, e := range experiments.All() {
		rows = append(rows, row{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if !hashRe.MatchString(key) {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, "hash",
			"malformed result hash %q (want 16 hex digits, optionally prefixed like advise/)", key)
		return
	}
	body, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "", "no cached result for %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
