// Package server is the iosimd daemon: a long-running HTTP/JSON service
// that answers what-if simulation requests (application × version ×
// cache tiers × kernel sharding) against the simulated Paragon XP/S.
//
// Three concerns shape it:
//
//   - Content-addressed result caching. A finished run's response body
//     is stored under experiments.ConfigKey — the canonical hash of the
//     full request configuration — in a byte-budgeted in-memory LRU
//     with optional disk spill, so a repeated what-if is served in
//     microseconds instead of re-simulating. Concurrent identical
//     requests coalesce onto one in-flight run.
//
//   - Admission control. Simulations are CPU-bound and sharded runs
//     occupy several cores, so requests pass a weighted slot pool sized
//     off GOMAXPROCS (a run's cost is its clamped shard count) with a
//     bounded FIFO queue; overflow is shed fast with 429 + Retry-After,
//     and every run carries a deadline and dies with its client.
//
//   - Observability. Hand-rolled Prometheus text exposition at
//     /metrics (request/latency/cache/admission series), plus /healthz.
package server

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"paragonio/internal/experiments"
	"paragonio/internal/server/metrics"
)

// Config sizes the daemon. Zero fields take documented defaults.
type Config struct {
	// Timeout bounds each simulation run (default 5 minutes).
	Timeout time.Duration
	// Slots is the admission slot pool (default GOMAXPROCS).
	Slots int
	// MaxQueue bounds the admission wait queue (default 4 × Slots).
	MaxQueue int
	// CacheBytes is the in-memory result-cache budget (default 64 MB).
	CacheBytes int64
	// SpillDir, when non-empty, enables write-through disk spill of
	// result artifacts (created if missing) and warm-start indexing of
	// artifacts left by a previous daemon run.
	SpillDir string
	// MaxSweepPoints caps the expanded grid size a single /v1/sweep may
	// declare (default 256).
	MaxSweepPoints int
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.Slots == 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Slots
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 256
	}
	return c
}

// Server is the daemon's state: result cache, admission controller,
// metrics registry, and the in-flight run table.
type Server struct {
	cfg   Config
	adm   *Admitter
	cache *ResultCache
	reg   *metrics.Registry
	mux   *http.ServeMux

	flightMu sync.Mutex
	flights  map[string]*flight

	// runSim executes one validated simulate request; tests stub it to
	// pin handler behavior (429, timeouts) without burning CPU on runs.
	runSim runFunc

	requests    *metrics.CounterVec
	simLatency  *metrics.Histogram
	advLatency  *metrics.Histogram
	runSeconds  *metrics.Histogram
	coalesced   *metrics.Counter
	rejected    *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	cacheEvicts *metrics.Counter
	spillHits   *metrics.Counter
	sweepPoints *metrics.Counter
	sweepDedup  *metrics.CounterVec
	faultRuns   *metrics.Counter
}

// New builds a daemon from cfg.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewResultCache(cfg.CacheBytes, cfg.SpillDir, experiments.KeyVersion)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		adm:     NewAdmitter(cfg.Slots, cfg.MaxQueue),
		cache:   cache,
		reg:     metrics.NewRegistry(),
		mux:     http.NewServeMux(),
		flights: make(map[string]*flight),
		runSim:  defaultRun,
	}
	s.wireMetrics()
	s.wireRoutes()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// WarmEntries reports how many result artifacts the warm-start scan
// indexed from the spill directory at boot.
func (s *Server) WarmEntries() int { return s.cache.SpilledLen() }

func (s *Server) wireMetrics() {
	r := s.reg
	s.requests = r.CounterVec("iosimd_requests_total",
		"HTTP requests served, by endpoint and status code.", "endpoint", "code")
	s.simLatency = r.Histogram("iosimd_request_seconds",
		"End-to-end request latency in seconds.",
		metrics.DefaultLatencyBuckets(), "endpoint", "simulate")
	s.advLatency = r.Histogram("iosimd_request_seconds",
		"End-to-end request latency in seconds.",
		metrics.DefaultLatencyBuckets(), "endpoint", "advise")
	s.runSeconds = r.Histogram("iosimd_run_seconds",
		"Wall-clock duration of simulation engine runs in seconds.",
		metrics.DefaultLatencyBuckets())
	s.coalesced = r.Counter("iosimd_coalesced_total",
		"Requests coalesced onto an identical in-flight run.")
	s.cacheHits = r.Counter("iosimd_cache_hits_total",
		"Result-cache hits (memory or disk spill).")
	s.cacheMisses = r.Counter("iosimd_cache_misses_total",
		"Result-cache misses.")
	s.cacheEvicts = r.Counter("iosimd_cache_evictions_total",
		"Result-cache LRU evictions.")
	s.spillHits = r.Counter("iosimd_cache_spill_hits_total",
		"Result-cache hits served from the disk spill index.")
	cacheBytes := r.Gauge("iosimd_cache_bytes",
		"Result-cache in-memory footprint in bytes.")
	cacheEntries := r.Gauge("iosimd_cache_entries",
		"Result-cache in-memory entry count.")
	cacheSpilled := r.Gauge("iosimd_cache_spilled_entries",
		"Result artifacts indexed in the disk spill directory.")
	queueDepth := r.Gauge("iosimd_queue_depth",
		"Requests waiting in the admission queue.")
	classDepth := r.GaugeVec("iosimd_queue_depth_class",
		"Requests waiting in the admission queue, by slot-cost weight class.",
		"class")
	inFlight := r.Gauge("iosimd_inflight_slots",
		"Admission slots currently held by running simulations.")
	heldKind := r.GaugeVec("iosimd_slots_held",
		"Admission slots currently held, by request kind.", "kind")
	s.rejected = r.Counter("iosimd_rejected_total",
		"Requests shed with 429 because the admission queue was full.")
	s.sweepPoints = r.Counter("iosimd_sweep_points_total",
		"Sweep grid points planned across all /v1/sweep requests.")
	s.sweepDedup = r.CounterVec("iosimd_sweep_dedup_total",
		"Sweep points served without a fresh engine run, by dedup source.",
		"source")
	s.faultRuns = r.Counter("iosimd_fault_runs_total",
		"Admitted simulation runs carrying a non-empty fault plan.")

	// Pre-create the label children so the gauges read zero from boot
	// instead of appearing on first use.
	for _, class := range costClasses {
		classDepth.With(class)
	}
	for _, kind := range []string{KindInteractive, KindSweep} {
		heldKind.With(kind)
	}

	s.cache.onHit = s.cacheHits.Inc
	s.cache.onMiss = s.cacheMisses.Inc
	s.cache.onEvict = s.cacheEvicts.Inc
	s.cache.onSpillHit = s.spillHits.Inc
	s.cache.onBytes = cacheBytes.Set
	s.cache.onEntries = cacheEntries.Set
	s.cache.onSpilled = cacheSpilled.Set
	s.adm.onQueueDepth = queueDepth.Set
	s.adm.onClassDepth = func(class string, depth int64) { classDepth.With(class).Set(depth) }
	s.adm.onInFlight = inFlight.Set
	s.adm.onHeldKind = func(kind string, held int64) { heldKind.With(kind).Set(held) }
	s.adm.onReject = s.rejected.Inc
}

func (s *Server) wireRoutes() {
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.simLatency, s.handleSimulate))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", nil, s.handleSweep))
	s.mux.HandleFunc("POST /v1/advise", s.instrument("advise", s.advLatency, s.handleAdvise))
	s.mux.HandleFunc("GET /v1/experiments", s.instrument("experiments", nil, s.handleExperiments))
	s.mux.HandleFunc("GET /v1/results/{hash}", s.instrument("results", nil, s.handleResults))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (sweep
// NDJSON, SDDF) can push partial responses through the instrumentation
// wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the request counter and an optional
// latency histogram.
func (s *Server) instrument(endpoint string, lat *metrics.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.requests.With(endpoint, httpStatus(code)).Inc()
		if lat != nil {
			lat.Observe(time.Since(start).Seconds())
		}
	}
}

func httpStatus(code int) string {
	// Fixed-width itoa for the handful of codes the daemon emits.
	if code < 100 || code > 599 {
		return "000"
	}
	return string([]byte{'0' + byte(code/100), '0' + byte(code/10%10), '0' + byte(code%10)})
}
