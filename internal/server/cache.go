package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// hashRe matches the keys ResultCache accepts: a result hash as produced
// by experiments.ConfigKey, optionally namespaced by an endpoint prefix
// ("advise/<hash>"). Restricting the alphabet keeps spill paths safe.
var hashRe = regexp.MustCompile(`^(?:[a-z]+/)?[0-9a-f]{16}$`)

// ResultCache is the daemon's content-addressed result store: finished
// response bodies keyed by the canonical hash of the request
// configuration, held in an in-memory LRU bounded by a byte budget, with
// optional spill of evicted artifacts to disk so a restarted or
// memory-pressured daemon can still serve known configurations without
// re-simulating.
type ResultCache struct {
	budget   int64
	spillDir string // "" disables disk spill

	mu      sync.Mutex
	bytes   int64
	order   *list.List // front = most recent
	entries map[string]*list.Element

	// Optional observability hooks (nil-safe).
	onHit, onMiss, onEvict func()
	onBytes, onEntries     func(int64)
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewResultCache builds a cache with the given in-memory byte budget.
// A non-empty spillDir enables disk spill of evicted entries; the
// directory is created if missing. budget < 1 disables in-memory
// caching (everything spills immediately if a spillDir is set).
func NewResultCache(budget int64, spillDir string) (*ResultCache, error) {
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: result cache spill dir: %w", err)
		}
	}
	return &ResultCache{
		budget:   budget,
		spillDir: spillDir,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}, nil
}

// Get returns the cached body for key, consulting memory first and then
// the spill directory. A disk hit is promoted back into memory. The
// returned slice must not be modified.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		if c.onHit != nil {
			c.onHit()
		}
		return body, true
	}
	c.mu.Unlock()
	if c.spillDir != "" && hashRe.MatchString(key) {
		if body, err := os.ReadFile(c.spillPath(key)); err == nil {
			c.Put(key, body) // promote
			if c.onHit != nil {
				c.onHit()
			}
			return body, true
		}
	}
	if c.onMiss != nil {
		c.onMiss()
	}
	return nil, false
}

// Put stores body under key, evicting least-recently-used entries until
// the byte budget holds. Evicted entries are spilled to disk when a
// spill directory is configured. Oversized bodies (> budget) are spilled
// directly without entering memory.
func (c *ResultCache) Put(key string, body []byte) {
	if !hashRe.MatchString(key) {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok { // refresh
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.order.MoveToFront(el)
		c.evictLocked()
		c.observeLocked()
		c.mu.Unlock()
		return
	}
	if int64(len(body)) > c.budget {
		c.mu.Unlock()
		c.spill(key, body)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, body: body})
	c.entries[key] = el
	c.bytes += int64(len(body))
	c.evictLocked()
	c.observeLocked()
	c.mu.Unlock()
}

// Len returns the number of in-memory entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the in-memory footprint.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// observeLocked pushes the memory footprint to the gauge hooks.
func (c *ResultCache) observeLocked() {
	if c.onBytes != nil {
		c.onBytes(c.bytes)
	}
	if c.onEntries != nil {
		c.onEntries(int64(c.order.Len()))
	}
}

// evictLocked drops LRU entries until the budget holds, spilling each
// victim to disk.
func (c *ResultCache) evictLocked() {
	for c.bytes > c.budget && c.order.Len() > 0 {
		el := c.order.Back()
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
		if c.onEvict != nil {
			c.onEvict()
		}
		// Spill outside would be nicer, but eviction volume is tiny and
		// holding the lock keeps promote/evict races trivially ordered.
		c.spill(e.key, e.body)
	}
}

// spill writes an artifact to the spill directory (atomic rename so a
// concurrent reader never sees a torn file). No-op without a spill dir.
func (c *ResultCache) spill(key string, body []byte) {
	if c.spillDir == "" {
		return
	}
	p := c.spillPath(key)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, p)
}

// spillPath maps a key to its on-disk artifact. Namespaced keys
// ("advise/<hash>") flatten to "advise-<hash>.json".
func (c *ResultCache) spillPath(key string) string {
	name := key
	for i := range name {
		if name[i] == '/' {
			name = name[:i] + "-" + name[i+1:]
			break
		}
	}
	return filepath.Join(c.spillDir, name+".json")
}
