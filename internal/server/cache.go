package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

// hashRe matches the keys ResultCache accepts: a result hash as produced
// by experiments.ConfigKey, optionally namespaced by an endpoint prefix
// ("advise/<hash>"). Restricting the alphabet keeps spill paths safe.
var hashRe = regexp.MustCompile(`^(?:[a-z]+/)?[0-9a-f]{16}$`)

// versionMarker is the spill-directory file recording which ConfigKey
// canonicalisation produced the artifacts inside. A daemon booting on a
// directory whose marker does not match its own key version purges the
// stale artifacts — the hashes would never match a fresh request anyway.
const versionMarker = "VERSION"

// ResultCache is the daemon's content-addressed result store: finished
// response bodies keyed by the canonical hash of the request
// configuration, held in an in-memory LRU bounded by a byte budget, with
// write-through spill to disk. The spill directory doubles as a
// warm-start index: on construction the cache scans it, revalidates the
// artifacts against the ConfigKey version marker, and indexes every
// surviving entry — so a restarted daemon serves yesterday's grid from
// disk instead of re-simulating it.
type ResultCache struct {
	budget   int64
	spillDir string // "" disables disk spill

	mu      sync.Mutex
	bytes   int64
	order   *list.List // front = most recent
	entries map[string]*list.Element
	spilled map[string]struct{} // keys with an on-disk artifact

	// Optional observability hooks (nil-safe).
	onHit, onMiss, onEvict, onSpillHit func()
	onBytes, onEntries, onSpilled      func(int64)
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewResultCache builds a cache with the given in-memory byte budget.
// A non-empty spillDir enables write-through disk spill; the directory
// is created if missing, and any artifacts already present from a
// previous daemon run are revalidated against version and indexed for
// warm-start serving. budget < 1 disables in-memory caching (everything
// lives on disk only, if a spillDir is set).
func NewResultCache(budget int64, spillDir, version string) (*ResultCache, error) {
	c := &ResultCache{
		budget:   budget,
		spillDir: spillDir,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		spilled:  make(map[string]struct{}),
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: result cache spill dir: %w", err)
		}
		if err := c.warmStart(version); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// warmStart rebuilds the spill index from a populated directory. A
// missing or mismatched version marker invalidates every artifact: the
// ConfigKey canonicalisation changed, so the hashes are unreachable.
func (c *ResultCache) warmStart(version string) error {
	marker := filepath.Join(c.spillDir, versionMarker)
	prev, err := os.ReadFile(marker)
	fresh := err != nil || strings.TrimSpace(string(prev)) != version
	names, err := filepath.Glob(filepath.Join(c.spillDir, "*.json"))
	if err != nil {
		return fmt.Errorf("server: result cache warm start: %w", err)
	}
	for _, p := range names {
		if fresh {
			_ = os.Remove(p) // stale key version; hash can never match
			continue
		}
		key, ok := keyFromSpillName(filepath.Base(p))
		if !ok {
			continue // foreign file; leave it alone, don't serve it
		}
		c.spilled[key] = struct{}{}
	}
	if fresh {
		if err := os.WriteFile(marker, []byte(version+"\n"), 0o644); err != nil {
			return fmt.Errorf("server: result cache version marker: %w", err)
		}
	}
	return nil
}

// SpilledLen returns the number of keys with an on-disk artifact —
// after boot, the warm-start inventory.
func (c *ResultCache) SpilledLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spilled)
}

// Get returns the cached body for key, consulting memory first and then
// the spill index. A disk hit is promoted back into memory. The
// returned slice must not be modified.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		if c.onHit != nil {
			c.onHit()
		}
		return body, true
	}
	_, onDisk := c.spilled[key]
	c.mu.Unlock()
	if onDisk {
		if body, err := os.ReadFile(c.spillPath(key)); err == nil {
			c.putMem(key, body) // promote; the artifact is already on disk
			if c.onSpillHit != nil {
				c.onSpillHit()
			}
			if c.onHit != nil {
				c.onHit()
			}
			return body, true
		}
	}
	if c.onMiss != nil {
		c.onMiss()
	}
	return nil, false
}

// Put stores body under key: write-through to the spill directory, then
// into the in-memory LRU, evicting least-recently-used entries until
// the byte budget holds. Oversized bodies (> budget) live on disk only.
func (c *ResultCache) Put(key string, body []byte) {
	if !hashRe.MatchString(key) {
		return
	}
	if c.spill(key, body) {
		c.mu.Lock()
		c.spilled[key] = struct{}{}
		c.observeLocked()
		c.mu.Unlock()
	}
	c.putMem(key, body)
}

// putMem inserts into the in-memory LRU only — the Put path after the
// write-through spill, and the Get promotion path (where the artifact
// is already on disk and re-spilling it would be wasted I/O).
func (c *ResultCache) putMem(key string, body []byte) {
	if !hashRe.MatchString(key) || int64(len(body)) > c.budget {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok { // refresh
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	c.evictLocked()
	c.observeLocked()
	c.mu.Unlock()
}

// Len returns the number of in-memory entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the in-memory footprint.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// observeLocked pushes the memory footprint to the gauge hooks.
func (c *ResultCache) observeLocked() {
	if c.onBytes != nil {
		c.onBytes(c.bytes)
	}
	if c.onEntries != nil {
		c.onEntries(int64(c.order.Len()))
	}
	if c.onSpilled != nil {
		c.onSpilled(int64(len(c.spilled)))
	}
}

// evictLocked drops LRU entries until the budget holds. Spill is
// write-through, so eviction only sheds memory — the artifact is
// already on disk and stays reachable through the spill index.
func (c *ResultCache) evictLocked() {
	for c.bytes > c.budget && c.order.Len() > 0 {
		el := c.order.Back()
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// spill writes an artifact to the spill directory (atomic rename so a
// concurrent reader never sees a torn file). Reports whether the
// artifact landed on disk; always false without a spill dir.
func (c *ResultCache) spill(key string, body []byte) bool {
	if c.spillDir == "" {
		return false
	}
	p := c.spillPath(key)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return false
	}
	return os.Rename(tmp, p) == nil
}

// spillPath maps a key to its on-disk artifact. Namespaced keys
// ("advise/<hash>") flatten to "advise-<hash>.json".
func (c *ResultCache) spillPath(key string) string {
	name := key
	for i := range name {
		if name[i] == '/' {
			name = name[:i] + "-" + name[i+1:]
			break
		}
	}
	return filepath.Join(c.spillDir, name+".json")
}

// keyFromSpillName inverts spillPath for the warm-start scan:
// "advise-<hash>.json" → "advise/<hash>", "<hash>.json" → "<hash>".
// Only names that round-trip to a valid cache key are accepted.
func keyFromSpillName(name string) (string, bool) {
	stem, ok := strings.CutSuffix(name, ".json")
	if !ok {
		return "", false
	}
	key := stem
	if i := strings.IndexByte(stem, '-'); i >= 0 {
		key = stem[:i] + "/" + stem[i+1:]
	}
	if !hashRe.MatchString(key) {
		return "", false
	}
	return key, true
}
