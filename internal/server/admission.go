package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Admitter.Acquire when the bounded wait
// queue is already at capacity; handlers map it to 429 + Retry-After.
var ErrQueueFull = errors.New("server: admission queue full")

// Admitter is the daemon's admission controller: a weighted slot pool
// (slots are sized off GOMAXPROCS — one slot ≈ one core the engine may
// occupy) with a bounded FIFO wait queue.
//
// Each run acquires a cost proportional to the concurrency it will
// consume: a single-threaded run costs one slot, a sharded run costs its
// shard count — big meshes with many lanes get fewer concurrent
// admissions, so the daemon never oversubscribes the machine. Waiters
// are served strictly in arrival order (head-of-line blocking is
// deliberate: a wide request must not starve behind a stream of narrow
// ones). When the wait queue is full, Acquire fails fast with
// ErrQueueFull so the caller can shed load instead of stacking it.
type Admitter struct {
	slots    int
	maxQueue int

	mu      sync.Mutex
	free    int
	waiters []*waiter

	// Optional observability hooks (nil-safe): queue depth and busy
	// slots as gauge setters, rejected admissions as a counter.
	onQueueDepth func(int64)
	onInFlight   func(int64)
	onReject     func()
}

type waiter struct {
	need  int
	ready chan struct{} // closed when granted
}

// NewAdmitter builds an admission controller with the given slot pool
// and wait-queue bound. slots < 1 and maxQueue < 0 are clamped.
func NewAdmitter(slots, maxQueue int) *Admitter {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admitter{slots: slots, maxQueue: maxQueue, free: slots}
}

// Slots returns the pool size.
func (a *Admitter) Slots() int { return a.slots }

// Cost clamps a requested concurrency to an admissible slot cost.
func (a *Admitter) Cost(shards int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > a.slots {
		shards = a.slots
	}
	return shards
}

// Acquire claims cost slots, waiting in the bounded FIFO queue when the
// pool is busy. It returns a release function on success; ErrQueueFull
// when the queue is at capacity; or ctx.Err() if the context ends while
// waiting. cost is clamped to the pool size.
func (a *Admitter) Acquire(ctx context.Context, cost int) (func(), error) {
	cost = a.Cost(cost)
	a.mu.Lock()
	if len(a.waiters) == 0 && a.free >= cost {
		a.free -= cost
		a.observeLocked()
		a.mu.Unlock()
		return a.releaseFunc(cost), nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		if a.onReject != nil {
			a.onReject()
		}
		return nil, fmt.Errorf("%w (%d waiting, %d slots busy)", ErrQueueFull, a.maxQueue, a.slots-a.free)
	}
	w := &waiter{need: cost, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.observeLocked()
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.releaseFunc(cost), nil
	case <-ctx.Done():
		a.mu.Lock()
		granted := false
		select {
		case <-w.ready:
			granted = true // grant raced the cancellation; give the slots back
		default:
			for i, q := range a.waiters {
				if q == w {
					a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
					break
				}
			}
		}
		a.observeLocked()
		a.mu.Unlock()
		if granted {
			a.releaseFunc(cost)()
		}
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent release closure for cost slots.
func (a *Admitter) releaseFunc(cost int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.free += cost
			a.grantLocked()
			a.observeLocked()
			a.mu.Unlock()
		})
	}
}

// grantLocked serves queued waiters FIFO while slots suffice.
func (a *Admitter) grantLocked() {
	for len(a.waiters) > 0 && a.free >= a.waiters[0].need {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.free -= w.need
		close(w.ready)
	}
}

// observeLocked pushes queue depth and busy-slot count to the hooks.
func (a *Admitter) observeLocked() {
	if a.onQueueDepth != nil {
		a.onQueueDepth(int64(len(a.waiters)))
	}
	if a.onInFlight != nil {
		a.onInFlight(int64(a.slots - a.free))
	}
}
