package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Admitter.Acquire when the caller's bounded
// wait queue is already at capacity; handlers map it to 429 + Retry-After.
var ErrQueueFull = errors.New("server: admission queue full")

// Admission kinds label who holds slots: interactive requests (single
// /v1/simulate and /v1/advise runs) and batch sweep points. The split
// exists for observability — the iosimd_slots_held gauge answers "is the
// big sweep crowding out interactive traffic?" at a glance.
const (
	KindInteractive = "interactive"
	KindSweep       = "sweep"
)

// Weight classes bucket a run's slot cost for the per-class queue-depth
// gauges: narrow single-threaded runs, medium few-lane sharded runs, and
// wide many-lane runs that occupy most of the pool.
func costClass(cost int) string {
	switch {
	case cost <= 1:
		return "narrow"
	case cost <= 4:
		return "medium"
	default:
		return "wide"
	}
}

// costClasses lists every weight class, for gauge refreshes.
var costClasses = []string{"narrow", "medium", "wide"}

// Admitter is the daemon's shared cost-aware scheduler: a weighted slot
// pool (slots are sized off GOMAXPROCS — one slot ≈ one core the engine
// may occupy) packed continuously from per-client FIFO queues.
//
// Each run acquires a cost proportional to the concurrency it will
// consume: a single-threaded run costs one slot, a sharded run costs its
// shard count — big meshes with many lanes get fewer concurrent
// admissions, so the daemon never oversubscribes the machine.
//
// Fairness is per client, not global FIFO: waiters queue FIFO within
// their client identity, and grants rotate round-robin across clients —
// a 100-point sweep parked by one client cannot convoy an interactive
// client's single request behind it. Within the rotation the pool stays
// work-conserving (any head that fits the free slots runs), with one
// guard against starving wide requests: a head that has been passed
// over too many times reserves the pool until it fits, bounding how
// long narrow runs can leapfrog it.
//
// The wait-queue bound applies per client: when a client's queue is
// full, Acquire fails fast with ErrQueueFull so the caller can shed
// load instead of stacking it. Sweep-kind waiters are exempt from the
// bound — a sweep is one admitted unit whose point count is already
// capped by the planner, and shedding its internal work items as 429s
// would tear half-finished grids.
type Admitter struct {
	slots    int
	maxQueue int

	mu       sync.Mutex
	free     int
	queues   map[string]*clientQueue
	ring     []string // clients with waiters, round-robin order
	cursor   int      // next ring index to offer a grant
	reserved *waiter  // starving head: while set, only it may be granted
	waiting  int      // total queued waiters
	byClass  map[string]int
	held     map[string]int // busy slots by kind

	// Optional observability hooks (nil-safe): queue depth (total and
	// per weight class), busy slots (total and per kind), rejections.
	onQueueDepth func(int64)
	onClassDepth func(class string, depth int64)
	onInFlight   func(int64)
	onHeldKind   func(kind string, held int64)
	onReject     func()
}

type clientQueue struct {
	waiters []*waiter
}

type waiter struct {
	client  string
	kind    string
	need    int
	skipped int           // grants to other clients while this head could not fit
	ready   chan struct{} // closed when granted
}

// NewAdmitter builds an admission controller with the given slot pool
// and per-client wait-queue bound. slots < 1 and maxQueue < 0 are
// clamped.
func NewAdmitter(slots, maxQueue int) *Admitter {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admitter{
		slots:    slots,
		maxQueue: maxQueue,
		free:     slots,
		queues:   make(map[string]*clientQueue),
		byClass:  make(map[string]int),
		held:     make(map[string]int),
	}
}

// Slots returns the pool size.
func (a *Admitter) Slots() int { return a.slots }

// QueueLen returns the total number of queued waiters across clients.
func (a *Admitter) QueueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// Free returns the number of unclaimed slots.
func (a *Admitter) Free() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free
}

// Cost clamps a requested concurrency to an admissible slot cost.
func (a *Admitter) Cost(shards int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > a.slots {
		shards = a.slots
	}
	return shards
}

// Acquire claims cost slots for an anonymous interactive run — the
// single-client convenience wrapper around AcquireAs.
func (a *Admitter) Acquire(ctx context.Context, cost int) (func(), error) {
	return a.AcquireAs(ctx, "", KindInteractive, cost)
}

// AcquireAs claims cost slots on behalf of client, waiting in the
// client's bounded FIFO queue when the pool is busy. It returns a
// release function on success; ErrQueueFull when the client's queue is
// at capacity (never for KindSweep); or ctx.Err() if the context ends
// while waiting. cost is clamped to the pool size.
func (a *Admitter) AcquireAs(ctx context.Context, client, kind string, cost int) (func(), error) {
	cost = a.Cost(cost)
	a.mu.Lock()
	q := a.queues[client]
	if q == nil {
		q = &clientQueue{}
		a.queues[client] = q
	}
	if kind != KindSweep && len(q.waiters) >= a.maxQueue && !(a.waiting == 0 && a.free >= cost) {
		busy := a.slots - a.free
		a.mu.Unlock()
		if a.onReject != nil {
			a.onReject()
		}
		return nil, fmt.Errorf("%w (%d waiting, %d slots busy)", ErrQueueFull, a.maxQueue, busy)
	}
	w := &waiter{client: client, kind: kind, need: cost, ready: make(chan struct{})}
	if len(q.waiters) == 0 {
		a.ring = append(a.ring, client)
	}
	q.waiters = append(q.waiters, w)
	a.waiting++
	a.byClass[costClass(cost)]++
	a.grantLocked()
	a.observeLocked()
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.releaseFunc(kind, cost), nil
	case <-ctx.Done():
		a.mu.Lock()
		granted := false
		select {
		case <-w.ready:
			granted = true // grant raced the cancellation; give the slots back
		default:
			a.removeWaiterLocked(w)
		}
		a.observeLocked()
		a.mu.Unlock()
		if granted {
			a.releaseFunc(kind, cost)()
		}
		return nil, ctx.Err()
	}
}

// removeWaiterLocked unlinks a still-queued waiter (context cancel).
func (a *Admitter) removeWaiterLocked(w *waiter) {
	q := a.queues[w.client]
	if q == nil {
		return
	}
	for i, cand := range q.waiters {
		if cand == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			a.waiting--
			a.byClass[costClass(w.need)]--
			break
		}
	}
	if len(q.waiters) == 0 {
		a.dropClientLocked(w.client)
	}
	if a.reserved == w {
		a.reserved = nil
		a.grantLocked()
	}
}

// dropClientLocked removes an emptied client from the rotation ring.
func (a *Admitter) dropClientLocked(client string) {
	for i, c := range a.ring {
		if c == client {
			a.ring = append(a.ring[:i], a.ring[i+1:]...)
			if i < a.cursor {
				a.cursor--
			}
			break
		}
	}
	if len(a.ring) > 0 {
		a.cursor %= len(a.ring)
	} else {
		a.cursor = 0
	}
	delete(a.queues, client)
}

// releaseFunc returns the idempotent release closure for cost slots.
func (a *Admitter) releaseFunc(kind string, cost int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.free += cost
			a.held[kind] -= cost
			a.grantLocked()
			a.observeLocked()
			a.mu.Unlock()
		})
	}
}

// reserveAfter is the starvation bound: once a head has been passed
// over by this many grants to other clients, it reserves the pool.
func (a *Admitter) reserveAfter() int { return 2 * a.slots }

// grantLocked packs the free slots from the per-client queues: grants
// rotate round-robin across clients (FIFO within a client), any head
// that fits runs, and a head skipped reserveAfter times reserves the
// pool until it fits.
func (a *Admitter) grantLocked() {
	for a.waiting > 0 {
		if a.reserved != nil {
			if a.free < a.reserved.need {
				return // pool drains until the starving head fits
			}
			w := a.reserved
			a.reserved = nil
			a.grantWaiterLocked(w)
			continue
		}
		grantedIdx := -1
		for i := 0; i < len(a.ring); i++ {
			idx := (a.cursor + i) % len(a.ring)
			head := a.queues[a.ring[idx]].waiters[0]
			if a.free >= head.need {
				grantedIdx = idx
				break
			}
		}
		if grantedIdx < 0 {
			return // nothing fits; wait for a release
		}
		client := a.ring[grantedIdx]
		w := a.queues[client].waiters[0]
		// Age every other head that still cannot fit after this grant;
		// one of them crossing the threshold reserves the pool.
		for _, c := range a.ring {
			if c == client {
				continue
			}
			head := a.queues[c].waiters[0]
			if a.free-w.need < head.need {
				head.skipped++
				if head.skipped >= a.reserveAfter() && a.reserved == nil {
					a.reserved = head
				}
			}
		}
		a.grantWaiterLocked(w)
		// Advance the rotation past the granted client (when the grant
		// emptied the client, dropClientLocked already fixed the cursor).
		for i, c := range a.ring {
			if c == client {
				a.cursor = (i + 1) % len(a.ring)
				break
			}
		}
	}
}

// grantWaiterLocked pops w from its client queue and hands it slots.
func (a *Admitter) grantWaiterLocked(w *waiter) {
	q := a.queues[w.client]
	q.waiters = q.waiters[1:]
	a.waiting--
	a.byClass[costClass(w.need)]--
	a.free -= w.need
	a.held[w.kind] += w.need
	if len(q.waiters) == 0 {
		a.dropClientLocked(w.client)
	}
	close(w.ready)
}

// observeLocked pushes queue depth (total and per class) and busy-slot
// counts (total and per kind) to the hooks.
func (a *Admitter) observeLocked() {
	if a.onQueueDepth != nil {
		a.onQueueDepth(int64(a.waiting))
	}
	if a.onClassDepth != nil {
		for _, class := range costClasses {
			a.onClassDepth(class, int64(a.byClass[class]))
		}
	}
	if a.onInFlight != nil {
		a.onInFlight(int64(a.slots - a.free))
	}
	if a.onHeldKind != nil {
		for _, kind := range []string{KindInteractive, KindSweep} {
			a.onHeldKind(kind, int64(a.held[kind]))
		}
	}
}
