package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmitterImmediateAndRelease(t *testing.T) {
	a := NewAdmitter(4, 2)
	rel1, err := a.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel1() // release is idempotent
	rel2()
	if rel, err := a.Acquire(context.Background(), 4); err != nil {
		t.Fatalf("full pool not reusable after release: %v", err)
	} else {
		rel()
	}
}

func TestAdmitterCostClamp(t *testing.T) {
	a := NewAdmitter(4, 0)
	if a.Cost(0) != 1 || a.Cost(-3) != 1 {
		t.Error("sub-slot costs must clamp to 1")
	}
	if a.Cost(64) != 4 {
		t.Error("cost beyond pool must clamp to the pool size")
	}
	rel, err := a.Acquire(context.Background(), 64) // wants more than the pool has
	if err != nil {
		t.Fatalf("clamped acquire failed: %v", err)
	}
	rel()
}

func TestAdmitterQueueOverflow(t *testing.T) {
	a := NewAdmitter(1, 1)
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue…
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := a.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("queued acquire failed: %v", err)
			return
		}
		r()
	}()
	// …wait until it is actually queued.
	for i := 0; ; i++ {
		if a.QueueLen() == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// …the second overflows.
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire = %v, want ErrQueueFull", err)
	}
	rel()
	<-done
}

func TestAdmitterContextCancelWhileQueued(t *testing.T) {
	a := NewAdmitter(1, 4)
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		errc <- err
	}()
	for i := 0; ; i++ {
		if a.QueueLen() == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	rel()
	// The cancelled waiter must not have left the pool leaked or the
	// queue corrupted.
	rel2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("pool unusable after cancelled waiter: %v", err)
	}
	rel2()
}

// TestAdmitterFIFOWeighted pins the fairness contract: a narrow waiter
// queued behind a wide one stays blocked while the wide one waits, even
// when enough slots free up for the narrow one to squeeze in.
func TestAdmitterFIFOWeighted(t *testing.T) {
	a := NewAdmitter(4, 8)
	relA, err := a.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := a.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	enqueue := func(name string, need, depth int) chan struct{} {
		ch := make(chan struct{})
		go func() {
			defer close(ch)
			r, err := a.Acquire(context.Background(), need)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			r()
		}()
		for i := 0; ; i++ {
			if a.QueueLen() == depth {
				return ch
			}
			if i > 1000 {
				t.Fatalf("%s never queued", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wide := enqueue("wide", 3, 1)
	narrow := enqueue("narrow", 1, 2)
	// Free 2 slots: not enough for wide (head of line), and narrow must
	// NOT jump it even though one slot would suffice.
	relA()
	select {
	case <-narrow:
		t.Fatal("narrow waiter jumped the wide head-of-line waiter")
	case <-wide:
		t.Fatal("wide waiter granted with insufficient slots")
	case <-time.After(50 * time.Millisecond):
	}
	relB()
	<-wide
	<-narrow
}

// TestAdmitterConcurrent hammers the pool from many goroutines; under
// -race this pins the locking, and the final free count must equal the
// pool size.
func TestAdmitterConcurrent(t *testing.T) {
	a := NewAdmitter(4, 64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := a.Acquire(context.Background(), 1+i%4)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
			rel()
		}(i)
	}
	wg.Wait()
	if a.Free() != 4 || a.QueueLen() != 0 {
		t.Errorf("pool state after drain: free=%d waiters=%d, want 4/0", a.Free(), a.QueueLen())
	}
}
