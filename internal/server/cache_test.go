package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func key(i int) string { return fmt.Sprintf("%016x", i) }

func TestResultCachePutGet(t *testing.T) {
	c, err := NewResultCache(1<<20, "", "v1")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(1), []byte(`{"a":1}`))
	got, ok := c.Get(key(1))
	if !ok || !bytes.Equal(got, []byte(`{"a":1}`)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Error("phantom hit")
	}
	// Refresh replaces the body and adjusts the footprint.
	c.Put(key(1), []byte(`{"a":2,"b":3}`))
	got, _ = c.Get(key(1))
	if !bytes.Equal(got, []byte(`{"a":2,"b":3}`)) {
		t.Errorf("refreshed Get = %q", got)
	}
	if c.Bytes() != int64(len(`{"a":2,"b":3}`)) {
		t.Errorf("bytes = %d after refresh", c.Bytes())
	}
}

func TestResultCacheRejectsBadKeys(t *testing.T) {
	c, err := NewResultCache(1<<20, "", "v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "nothex", "../../etc/passwd", "ADVISE/0011223344556677", "advise/short"} {
		c.Put(bad, []byte("x"))
	}
	if c.Len() != 0 {
		t.Errorf("bad keys entered the cache: len=%d", c.Len())
	}
	c.Put("advise/0011223344556677", []byte("x"))
	if c.Len() != 1 {
		t.Error("namespaced hash key rejected")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c, err := NewResultCache(100, "", "v1")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 40)
	c.Put(key(1), body)
	c.Put(key(2), body)
	c.Get(key(1)) // touch 1 so 2 is the LRU victim
	c.Put(key(3), body)
	if _, ok := c.Get(key(2)); ok {
		t.Error("LRU victim survived")
	}
	for _, k := range []string{key(1), key(3)} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted out of order", k)
		}
	}
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Errorf("footprint %d bytes / %d entries, want 80/2", c.Bytes(), c.Len())
	}
}

func TestResultCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	c, err := NewResultCache(100, dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 60)
	c.Put(key(1), body)
	c.Put(key(2), body) // evicts 1 to disk
	if _, err := os.Stat(filepath.Join(dir, key(1)+".json")); err != nil {
		t.Fatalf("evicted entry not spilled: %v", err)
	}
	// A disk hit is served and promoted back into memory (evicting 2).
	if got, ok := c.Get(key(1)); !ok || len(got) != 60 {
		t.Fatalf("disk hit failed: %v, %d bytes", ok, len(got))
	}
	c.mu.Lock()
	_, inMem := c.entries[key(1)]
	c.mu.Unlock()
	if !inMem {
		t.Error("disk hit not promoted to memory")
	}

	// Oversized bodies bypass memory and go straight to disk.
	big := make([]byte, 500)
	c.Put(key(7), big)
	if _, ok := c.entries[key(7)]; ok {
		t.Error("oversized body entered memory")
	}
	if got, ok := c.Get(key(7)); !ok || len(got) != 500 {
		t.Errorf("oversized body not readable from spill: %v, %d", ok, len(got))
	}

	// Namespaced keys flatten to a safe filename.
	c2, err := NewResultCache(1, dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	c2.Put("advise/00112233aabbccdd", []byte("advice"))
	if _, err := os.Stat(filepath.Join(dir, "advise-00112233aabbccdd.json")); err != nil {
		t.Errorf("namespaced spill artifact missing: %v", err)
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c, err := NewResultCache(1<<12, t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := key(j % 32)
				if j%3 == 0 {
					c.Put(k, bytes.Repeat([]byte("x"), 64))
				} else {
					c.Get(k)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Bytes() > 1<<12 {
		t.Errorf("budget exceeded: %d", c.Bytes())
	}
}
