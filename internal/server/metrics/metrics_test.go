package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_depth", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 5",
		"# TYPE test_depth gauge",
		"test_depth 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10}, "endpoint", "simulate")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{endpoint="simulate",le="0.1"} 1`,
		`test_seconds_bucket{endpoint="simulate",le="1"} 3`,
		`test_seconds_bucket{endpoint="simulate",le="10"} 4`,
		`test_seconds_bucket{endpoint="simulate",le="+Inf"} 5`,
		`test_seconds_sum{endpoint="simulate"} 56.05`,
		`test_seconds_count{endpoint="simulate"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBoundaryObservation pins that an observation exactly on a
// bucket bound lands in that bucket (le is an inclusive upper bound).
func TestHistogramBoundaryObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "bounds", []float64{1, 2})
	h.Observe(1.0)
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `b_seconds_bucket{le="1"} 1`) {
		t.Errorf("observation on the bound escaped its bucket:\n%s", b.String())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "endpoint", "code")
	v.With("simulate", "200").Add(2)
	v.With("simulate", "400").Inc()
	v.With("advise", "200").Inc()
	if v.With("simulate", "200").Value() != 2 {
		t.Error("child counter identity not stable")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`req_total{endpoint="simulate",code="200"} 2`,
		`req_total{endpoint="simulate",code="400"} 1`,
		`req_total{endpoint="advise",code="200"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Error("family header not emitted exactly once")
	}
}

// TestSharedFamilyHeader pins that several histograms in one family
// (distinct constant labels) share one HELP/TYPE header.
func TestSharedFamilyHeader(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "latency", []float64{1}, "endpoint", "a").Observe(0.5)
	r.Histogram("lat_seconds", "latency", []float64{1}, "endpoint", "b").Observe(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Count(out, "# TYPE lat_seconds histogram") != 1 {
		t.Errorf("family header emitted more than once:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{endpoint="b",le="+Inf"} 1`) {
		t.Errorf("second family member missing:\n%s", out)
	}
}

// TestConcurrentUse drives every metric type from parallel goroutines;
// run under -race this pins the synchronization.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DefaultLatencyBuckets())
	v := r.CounterVec("v_total", "v", "code")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				v.With([]string{"200", "400", "429"}[j%3]).Inc()
			}
		}(i)
	}
	var b strings.Builder
	r.WritePrometheus(&b) // concurrent scrape
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
