// Package metrics is a minimal, dependency-free Prometheus exposition
// library for the iosimd daemon: counters, gauges, histograms, and a
// labeled counter family, rendered in the Prometheus text format
// (version 0.0.4) by Registry.WritePrometheus.
//
// It exists because the repository is stdlib-only by charter: the
// daemon's observability layer cannot take the client_golang dependency,
// and the subset it needs — atomic counters, fixed-bucket latency
// histograms, one dynamic label family for per-endpoint/status request
// counts — is small enough to hand-roll and pin with tests.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered exposition family member.
type metric interface {
	// family returns the metric family name (without label suffixes).
	family() string
	typeName() string
	helpText() string
	// write renders the sample lines (no HELP/TYPE headers).
	write(w io.Writer)
}

// Registry holds registered metrics and renders them in registration
// order, emitting each family's HELP/TYPE header once.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if !seen[m.family()] {
			seen[m.family()] = true
			fmt.Fprintf(w, "# HELP %s %s\n", m.family(), m.helpText())
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family(), m.typeName())
		}
		m.write(w)
	}
}

// labelPairs renders {k1="v1",k2="v2"} (or "" for no labels).
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%q", n, values[i])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	name, help string
	labels     string // pre-rendered constant label pairs, may be ""
	v          atomic.Uint64
}

// Counter registers a new counter. An optional pair of slices supplies
// constant labels (names, values) baked into every sample.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters are monotone).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) family() string   { return c.name }
func (c *Counter) typeName() string { return "counter" }
func (c *Counter) helpText() string { return c.help }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.v.Load())
}

// Gauge is a settable signed value.
type Gauge struct {
	name, help string
	labels     string // pre-rendered constant label pairs, may be ""
	v          atomic.Int64
}

// Gauge registers a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) family() string   { return g.name }
func (g *Gauge) typeName() string { return "gauge" }
func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", g.name, g.labels, g.v.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). Buckets are cumulative upper bounds; an implicit
// +Inf bucket is always present.
type Histogram struct {
	name, help string
	labelNames []string
	labelVals  []string
	bounds     []float64

	mu     sync.Mutex
	counts []uint64 // parallel to bounds, plus one slot for +Inf
	sum    float64
	total  uint64
}

// DefaultLatencyBuckets spans sub-millisecond cache hits to minute-long
// scaled-mesh simulations.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30, 60}
}

// Histogram registers a histogram with the given cumulative upper
// bounds (sorted ascending) and optional constant labels given as
// alternating name, value pairs ("endpoint", "simulate").
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairsList ...string) *Histogram {
	if len(labelPairsList)%2 != 0 {
		panic("metrics: Histogram constant labels must be name/value pairs")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be sorted")
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	for i := 0; i < len(labelPairsList); i += 2 {
		h.labelNames = append(h.labelNames, labelPairsList[i])
		h.labelVals = append(h.labelVals, labelPairsList[i+1])
	}
	r.register(h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) family() string   { return h.name }
func (h *Histogram) typeName() string { return "histogram" }
func (h *Histogram) helpText() string { return h.help }
func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		names := append(append([]string(nil), h.labelNames...), "le")
		vals := append(append([]string(nil), h.labelVals...), formatBound(b))
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, labelPairs(names, vals), cum)
	}
	cum += counts[len(h.bounds)]
	names := append(append([]string(nil), h.labelNames...), "le")
	vals := append(append([]string(nil), h.labelVals...), "+Inf")
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, labelPairs(names, vals), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", h.name, labelPairs(h.labelNames, h.labelVals), sum)
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, labelPairs(h.labelNames, h.labelVals), total)
}

// formatBound renders a bucket bound the way Prometheus expects.
func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// CounterVec is a family of counters distinguished by label values
// created on first use — the shape of per-endpoint/per-status request
// counts, whose status codes are not known at registration time.
type CounterVec struct {
	name, help string
	labelNames []string

	mu       sync.Mutex
	children map[string]*Counter
	order    []string // insertion-ordered child keys for stable output
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("metrics: CounterVec needs at least one label")
	}
	v := &CounterVec{name: name, help: help, labelNames: labelNames,
		children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child counter for the given label values, creating it
// on first use. The value count must match the registered label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if len(labelValues) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			v.name, len(v.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{name: v.name, help: v.help,
			labels: labelPairs(v.labelNames, labelValues)}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

// GaugeVec is a family of gauges distinguished by label values created
// on first use — the shape of per-class queue depths and per-kind slot
// occupancy, whose label sets grow as new classes appear.
type GaugeVec struct {
	name, help string
	labelNames []string

	mu       sync.Mutex
	children map[string]*Gauge
	order    []string // insertion-ordered child keys for stable output
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic("metrics: GaugeVec needs at least one label")
	}
	v := &GaugeVec{name: name, help: help, labelNames: labelNames,
		children: make(map[string]*Gauge)}
	r.register(v)
	return v
}

// With returns the child gauge for the given label values, creating it
// on first use. The value count must match the registered label names.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if len(labelValues) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			v.name, len(v.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[key]
	if !ok {
		g = &Gauge{name: v.name, help: v.help,
			labels: labelPairs(v.labelNames, labelValues)}
		v.children[key] = g
		v.order = append(v.order, key)
	}
	return g
}

func (v *GaugeVec) family() string   { return v.name }
func (v *GaugeVec) typeName() string { return "gauge" }
func (v *GaugeVec) helpText() string { return v.help }
func (v *GaugeVec) write(w io.Writer) {
	v.mu.Lock()
	children := make([]*Gauge, 0, len(v.order))
	for _, k := range v.order {
		children = append(children, v.children[k])
	}
	v.mu.Unlock()
	for _, g := range children {
		g.write(w)
	}
}

func (v *CounterVec) family() string   { return v.name }
func (v *CounterVec) typeName() string { return "counter" }
func (v *CounterVec) helpText() string { return v.help }
func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	children := make([]*Counter, 0, len(v.order))
	for _, k := range v.order {
		children = append(children, v.children[k])
	}
	v.mu.Unlock()
	for _, c := range children {
		c.write(w)
	}
}
