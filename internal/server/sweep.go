package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"

	"paragonio/internal/experiments"
)

// SweepRequest is the body of POST /v1/sweep: a config grid declared as
// one list per axis. The planner expands the Cartesian product
// (version × seed × ionodes × stripe × tier × fault plan), dedupes the
// points by content address against the result cache and every
// in-flight run, and executes the survivors through the shared
// admission scheduler. Results stream back as NDJSON in completion
// order.
type SweepRequest struct {
	App     string `json:"app"`               // "escat" or "prism"
	Dataset string `json:"dataset,omitempty"` // escat only

	Versions    []string `json:"versions"`               // at least one
	Seeds       []int64  `json:"seeds,omitempty"`        // default [1]
	IONodes     []int    `json:"ionodes,omitempty"`      // default [paper machine]
	StripeUnits []int64  `json:"stripe_units,omitempty"` // default [paper machine]

	// Tiers is the cache-hierarchy ladder: one entry per rung, null for
	// the uncached baseline. Default is a single-null ladder.
	Tiers []*TiersRequest `json:"tiers,omitempty"`

	// Faults is the fault-plan ladder: one plan per rung, empty (or
	// null) for the healthy machine. Default is a single healthy rung.
	Faults [][]FaultRequest `json:"faults,omitempty"`

	// Per-point scalars shared by every grid point.
	Shards   int   `json:"shards,omitempty"`
	WindowUS int64 `json:"window_us,omitempty"`
	SampleMS int64 `json:"sample_ms,omitempty"`
}

// sweepPlan is the first NDJSON line: the shape of the expanded grid.
type sweepPlan struct {
	Plan    bool `json:"plan"`
	Points  int  `json:"points"`  // expanded grid size
	Unique  int  `json:"unique"`  // distinct content addresses
	Invalid int  `json:"invalid"` // points rejected by validation
	Slots   int  `json:"slots"`   // admission pool size
}

// sweepPointLine is one per-point NDJSON line, emitted in completion
// order; Point is the flat grid index for client-side reordering.
type sweepPointLine struct {
	Point      int    `json:"point"`
	App        string `json:"app"`
	Dataset    string `json:"dataset,omitempty"`
	Version    string `json:"version"`
	Seed       int64  `json:"seed"`
	IONodes    int    `json:"ionodes,omitempty"`
	StripeUnit int64  `json:"stripe_unit,omitempty"`
	Tier       int    `json:"tier"`  // index into the request's tier ladder
	Fault      int    `json:"fault"` // index into the request's fault ladder

	Hash   string `json:"hash,omitempty"`
	Status string `json:"status"`          // "ok", "error", or "invalid"
	Dedup  string `json:"dedup,omitempty"` // "cache", "inflight", or "request"
	Error  string `json:"error,omitempty"`

	Result json.RawMessage `json:"result,omitempty"` // SimulateResponse
}

// sweepSummary is the final NDJSON line.
type sweepSummary struct {
	Done          bool    `json:"done"`
	OK            int     `json:"ok"`
	Errors        int     `json:"errors"`
	Invalid       int     `json:"invalid"`
	DedupCache    int     `json:"dedup_cache"`    // served from the result cache
	DedupInflight int     `json:"dedup_inflight"` // joined someone's running flight
	DedupRequest  int     `json:"dedup_request"`  // duplicate point within this grid
	WallSeconds   float64 `json:"wall_seconds"`
}

// sweepPoint is one planned grid point.
type sweepPoint struct {
	index int
	req   SimulateRequest
	tier  int
	fault int
	key   string
	err   error // validation failure, when non-nil
}

// expand walks the grid and materialises every point; invalid points
// carry their validation error instead of a key.
func (sr *SweepRequest) expand() ([]sweepPoint, error) {
	if len(sr.Versions) == 0 {
		return nil, fieldErrorf("versions", "sweep needs at least one version")
	}
	seeds := sr.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0} // validate() resolves 0 to the default seed
	}
	ionodes := sr.IONodes
	if len(ionodes) == 0 {
		ionodes = []int{0}
	}
	stripes := sr.StripeUnits
	if len(stripes) == 0 {
		stripes = []int64{0}
	}
	tiers := sr.Tiers
	if len(tiers) == 0 {
		tiers = []*TiersRequest{nil}
	}
	plans := sr.Faults
	if len(plans) == 0 {
		plans = [][]FaultRequest{nil}
	}
	grid, err := experiments.NewGrid(len(sr.Versions), len(seeds), len(ionodes), len(stripes), len(tiers), len(plans))
	if err != nil {
		return nil, err
	}
	points := make([]sweepPoint, 0, grid.Size())
	for i := 0; i < grid.Size(); i++ {
		c := grid.Coords(i)
		p := sweepPoint{
			index: i,
			tier:  c[4],
			fault: c[5],
			req: SimulateRequest{
				App:        sr.App,
				Dataset:    sr.Dataset,
				Version:    sr.Versions[c[0]],
				Seed:       seeds[c[1]],
				IONodes:    ionodes[c[2]],
				StripeUnit: stripes[c[3]],
				Shards:     sr.Shards,
				WindowUS:   sr.WindowUS,
				SampleMS:   sr.SampleMS,
				Tiers:      tiers[c[4]],
				Faults:     plans[c[5]],
			},
		}
		if err := p.req.validate(); err != nil {
			p.err = err
		} else {
			p.key = experiments.ConfigKey(p.req.config(), p.req.identity())
		}
		points = append(points, p)
	}
	return points, nil
}

// line renders the point's static fields into an NDJSON line skeleton.
func (p *sweepPoint) line() sweepPointLine {
	return sweepPointLine{
		Point:      p.index,
		App:        p.req.App,
		Dataset:    p.req.Dataset,
		Version:    p.req.Version,
		Seed:       p.req.Seed,
		IONodes:    p.req.IONodes,
		StripeUnit: p.req.StripeUnit,
		Tier:       p.tier,
		Fault:      p.fault,
		Hash:       p.key,
	}
}

// ndjsonWriter serialises concurrent point completions onto one
// streaming response body, flushing after every line so clients overlap
// analysis with execution.
type ndjsonWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	fl http.Flusher
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	return &ndjsonWriter{w: w, fl: fl}
}

func (nw *ndjsonWriter) writeLine(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.w.Write(append(b, '\n'))
	if nw.fl != nil {
		nw.fl.Flush()
	}
}

// sweepTally accumulates the summary counts across point workers.
type sweepTally struct {
	mu      sync.Mutex
	summary sweepSummary
}

func (t *sweepTally) record(status, dedup string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch status {
	case "ok":
		t.summary.OK++
	case "error":
		t.summary.Errors++
	case "invalid":
		t.summary.Invalid++
	}
	switch dedup {
	case "cache":
		t.summary.DedupCache++
	case "inflight":
		t.summary.DedupInflight++
	case "request":
		t.summary.DedupRequest++
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sr SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadJSON, "", "bad request body: %v", err)
		return
	}
	points, err := sr.expand()
	if err != nil {
		writeValidationError(w, err)
		return
	}
	if len(points) > s.cfg.MaxSweepPoints {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, "",
			"sweep expands to %d points, over the %d-point cap", len(points), s.cfg.MaxSweepPoints)
		return
	}
	s.sweepPoints.Add(uint64(len(points)))

	// In-request dedup: the first point with each content address is the
	// leader and executes; later duplicates reuse its line.
	groups := make(map[string][]*sweepPoint)
	var leaders []*sweepPoint
	invalid := 0
	for i := range points {
		p := &points[i]
		if p.err != nil {
			invalid++
			continue
		}
		if len(groups[p.key]) == 0 {
			leaders = append(leaders, p)
		}
		groups[p.key] = append(groups[p.key], p)
	}

	start := time.Now()
	nw := newNDJSONWriter(w)
	tally := &sweepTally{}
	nw.writeLine(sweepPlan{
		Plan:    true,
		Points:  len(points),
		Unique:  len(leaders),
		Invalid: invalid,
		Slots:   s.adm.Slots(),
	})
	for i := range points {
		p := &points[i]
		if p.err == nil {
			continue
		}
		line := p.line()
		line.Status = "invalid"
		line.Error = p.err.Error()
		tally.record(line.Status, "")
		nw.writeLine(line)
	}

	// Execute leaders through a launch window about twice the slot pool:
	// wide enough to keep the admission queue fed (so slots never idle
	// between points), narrow enough that a big grid does not park
	// hundreds of goroutines in the scheduler at once.
	ctx := r.Context()
	client := clientID(r)
	sem := make(chan struct{}, 2*s.adm.Slots())
	var wg sync.WaitGroup
	for _, leader := range leaders {
		wg.Add(1)
		go func(leader *sweepPoint) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return // client gone; nobody reads further lines
			}
			s.runSweepPoint(ctx, client, nw, tally, leader, groups[leader.key])
		}(leader)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return
	}
	tally.mu.Lock()
	summary := tally.summary
	tally.mu.Unlock()
	summary.Done = true
	summary.WallSeconds = time.Since(start).Seconds()
	nw.writeLine(summary)
}

// runSweepPoint resolves one unique grid point — result cache, then
// in-flight coalescing, then a fresh admitted run — and emits a line
// for the leader plus one per in-request duplicate.
func (s *Server) runSweepPoint(ctx context.Context, client string, nw *ndjsonWriter, tally *sweepTally, leader *sweepPoint, group []*sweepPoint) {
	emit := func(result json.RawMessage, dedup, errMsg string) {
		for _, p := range group {
			line := p.line()
			line.Result = result
			switch {
			case errMsg != "":
				line.Status = "error"
				line.Error = errMsg
			default:
				line.Status = "ok"
			}
			if p != leader {
				line.Dedup = "request"
				s.sweepDedup.With("request").Inc()
			} else {
				line.Dedup = dedup
				if dedup != "" {
					s.sweepDedup.With(dedup).Inc()
				}
			}
			tally.record(line.Status, line.Dedup)
			nw.writeLine(line)
		}
	}

	if body, ok := s.cache.Get(leader.key); ok {
		emit(body, "cache", "")
		return
	}
	req := leader.req
	cfg := req.config()
	f, joined := s.joinFlight(leader.key, func(runCtx context.Context) ([]byte, []byte, error) {
		res, err := s.admitAndRunAs(runCtx, client, KindSweep, &req, cfg)
		if err != nil {
			return nil, nil, err
		}
		resp := buildSimulateResponse(&req, leader.key, res)
		res.Trace.Release() // response built; recycle the event buffer
		return marshalPair(resp, &resp.Cached)
	})
	dedup := ""
	if joined {
		dedup = "inflight"
		s.coalesced.Inc()
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		s.leaveFlight(f)
		return
	}
	s.leaveFlight(f)
	if f.err != nil {
		emit(nil, dedup, f.err.Error())
		return
	}
	if f.cacheBody != nil {
		s.cache.Put(leader.key, f.cacheBody)
	}
	emit(f.body, dedup, "")
}

// clientID identifies the requester for per-client fair-share
// scheduling: the X-Client header when set, else the peer address.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
