package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
)

// newTestServer builds a daemon with a stubbed engine so handler tests
// don't burn CPU on real simulations.
func newTestServer(t *testing.T, cfg Config, run runFunc) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		s.runSim = run
	}
	return s
}

// stubRun returns a minimal deterministic result without simulating.
func stubRun(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
	return &core.Result{
		App:     strings.ToUpper(req.App),
		Version: req.Version,
		Nodes:   4,
		Exec:    3 * time.Second,
		Trace:   pablo.NewTrace(),
	}, nil
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, b.Bytes()
}

func TestSimulateOKAndCacheHit(t *testing.T) {
	s := newTestServer(t, Config{}, stubRun)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"app":"prism","version":"C"}`
	resp, out := postJSON(t, ts, "/v1/simulate", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var first SimulateResponse
	if err := json.Unmarshal(out, &first); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if first.Cached {
		t.Error("first response claims cached")
	}
	if first.App != "prism" || first.Version != "C" || first.Nodes != 4 {
		t.Errorf("response identity %s/%s on %d nodes", first.App, first.Version, first.Nodes)
	}
	if len(first.Hash) != 16 {
		t.Errorf("hash %q not 16 hex digits", first.Hash)
	}

	// The identical request is a cache hit: cached=true, hit counted,
	// and every other field byte-identical.
	_, out2 := postJSON(t, ts, "/v1/simulate", body)
	var second SimulateResponse
	if err := json.Unmarshal(out2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat response not served from cache")
	}
	second.Cached = false
	if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", second) {
		t.Errorf("cached response diverges:\n%+v\n%+v", first, second)
	}
	if s.cacheHits.Value() != 1 {
		t.Errorf("cache hits = %d, want 1", s.cacheHits.Value())
	}

	// A semantically different request misses.
	_, out3 := postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C","seed":2}`)
	var third SimulateResponse
	if err := json.Unmarshal(out3, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.Hash == first.Hash {
		t.Error("different seed collided with the cached run")
	}

	// GET /v1/results/{hash} replays the artifact.
	resp4, out4 := getURL(t, ts, "/v1/results/"+first.Hash)
	if resp4.StatusCode != 200 || !bytes.Contains(out4, []byte(`"cached":true`)) {
		t.Errorf("results replay: %d %s", resp4.StatusCode, out4)
	}
	if resp5, _ := getURL(t, ts, "/v1/results/0000000000000000"); resp5.StatusCode != 404 {
		t.Errorf("unknown hash status %d, want 404", resp5.StatusCode)
	}
	if resp6, _ := getURL(t, ts, "/v1/results/nothex"); resp6.StatusCode != 400 {
		t.Errorf("malformed hash status %d, want 400", resp6.StatusCode)
	}
}

func getURL(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, b.Bytes()
}

// TestSimulateBadRequests pins the error-schema contract: every failure
// is {"error": {"code", "message", "field"}} with a stable code and the
// offending field named on validation errors.
func TestSimulateBadRequests(t *testing.T) {
	s := newTestServer(t, Config{}, stubRun)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body      string
		wantCode  string
		wantField string
		wantErr   string
	}{
		{`{not json`, ErrCodeBadJSON, "", "bad request body"},
		{`{"app":"escat","version":"C","bogus":1}`, ErrCodeBadJSON, "", "bad request body"},
		{`{"version":"C"}`, ErrCodeInvalidRequest, "app", "missing app"},
		{`{"app":"fortran","version":"C"}`, ErrCodeInvalidRequest, "app", `unknown app "fortran"`},
		{`{"app":"escat","version":"Z"}`, ErrCodeInvalidRequest, "version", `unknown escat version "Z"`},
		{`{"app":"escat","dataset":"helium","version":"C"}`, ErrCodeInvalidRequest, "dataset", `unknown escat dataset "helium"`},
		{`{"app":"prism","dataset":"ethylene","version":"C"}`, ErrCodeInvalidRequest, "dataset", "prism takes no dataset"},
		{`{"app":"prism","version":"C","shards":-1}`, ErrCodeInvalidRequest, "shards", "shards must be non-negative"},
		{`{"app":"prism","version":"C","ionodes":-1}`, ErrCodeInvalidRequest, "ionodes", "ionodes must be non-negative"},
		{`{"app":"prism","version":"C","faults":[{"kind":"disk-melt"}]}`,
			ErrCodeInvalidRequest, "faults", "unknown kind"},
		{`{"app":"prism","version":"C","faults":[{"kind":"straggler","ionode":0,"factor":0.5}]}`,
			ErrCodeInvalidRequest, "faults", "need > 1"},
		{`{"app":"prism","version":"C","faults":[{"kind":"disk-fail","ionode":99}]}`,
			ErrCodeInvalidRequest, "faults", "out of range"},
		{`{"app":"prism","version":"C","faults":[{"kind":"disk-fail","bogus":1}]}`,
			ErrCodeBadJSON, "", "bad request body"},
	} {
		resp, out := postJSON(t, ts, "/v1/simulate", tc.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", tc.body, resp.StatusCode)
			continue
		}
		var e apiError
		if err := json.Unmarshal(out, &e); err != nil {
			t.Errorf("%s: error body is not the envelope: %v\n%s", tc.body, err, out)
			continue
		}
		if e.Error.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.body, e.Error.Code, tc.wantCode)
		}
		if e.Error.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q", tc.body, e.Error.Field, tc.wantField)
		}
		if !strings.Contains(e.Error.Message, tc.wantErr) {
			t.Errorf("%s: message %q does not mention %q", tc.body, e.Error.Message, tc.wantErr)
		}
	}
}

// TestErrorSchemaOnRunAndResultPaths pins codes on the non-validation
// paths: engine failure (run_failed), unknown result (not_found), and
// malformed result hash (invalid_request on "hash").
func TestErrorSchemaOnRunAndResultPaths(t *testing.T) {
	failing := func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		return nil, fmt.Errorf("boom")
	}
	s := newTestServer(t, Config{}, failing)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
	var e apiError
	if err := json.Unmarshal(out, &e); err != nil {
		t.Fatalf("run failure body: %v\n%s", err, out)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity || e.Error.Code != ErrCodeRunFailed {
		t.Errorf("run failure: status %d code %q, want 422 %s", resp.StatusCode, e.Error.Code, ErrCodeRunFailed)
	}

	resp, out = getURL(t, ts, "/v1/results/0000000000000000")
	if err := json.Unmarshal(out, &e); err != nil {
		t.Fatalf("not-found body: %v\n%s", err, out)
	}
	if resp.StatusCode != 404 || e.Error.Code != ErrCodeNotFound {
		t.Errorf("unknown hash: status %d code %q, want 404 %s", resp.StatusCode, e.Error.Code, ErrCodeNotFound)
	}

	resp, out = getURL(t, ts, "/v1/results/nothex")
	if err := json.Unmarshal(out, &e); err != nil {
		t.Fatalf("malformed-hash body: %v\n%s", err, out)
	}
	if resp.StatusCode != 400 || e.Error.Code != ErrCodeInvalidRequest || e.Error.Field != "hash" {
		t.Errorf("malformed hash: status %d code %q field %q, want 400 %s hash",
			resp.StatusCode, e.Error.Code, e.Error.Field, ErrCodeInvalidRequest)
	}
}

// TestSimulateFaultsBlock: a faults block reaches the engine config,
// is part of the content address, and counts in the fault-runs metric.
func TestSimulateFaultsBlock(t *testing.T) {
	var got core.Config
	capture := func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		got = cfg
		return stubRun(ctx, req, cfg)
	}
	s := newTestServer(t, Config{}, capture)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const degraded = `{"app":"prism","version":"C","faults":[{"kind":"disk-fail","at_ms":1000,"ionode":0}]}`
	resp, out := postJSON(t, ts, "/v1/simulate", degraded)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got.Faults.String() != "disk-fail@1000000000,io=0" {
		t.Errorf("engine saw plan %q", got.Faults.String())
	}
	if s.faultRuns.Value() != 1 {
		t.Errorf("fault-runs counter = %d, want 1", s.faultRuns.Value())
	}
	var deg SimulateResponse
	if err := json.Unmarshal(out, &deg); err != nil {
		t.Fatal(err)
	}
	_, out = postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
	var healthy SimulateResponse
	if err := json.Unmarshal(out, &healthy); err != nil {
		t.Fatal(err)
	}
	if deg.Hash == healthy.Hash {
		t.Error("degraded run shares the healthy run's content address")
	}
	if s.faultRuns.Value() != 1 {
		t.Errorf("healthy run moved the fault-runs counter to %d", s.faultRuns.Value())
	}
}

// TestSimulateLogTierBlock pins the third tier's API surface: the
// tiers.log block reaches the engine as a cache.LogConfig, the log
// counters come back in the response, and the tier is part of the
// content address.
func TestSimulateLogTierBlock(t *testing.T) {
	var got core.Config
	capture := func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		got = cfg
		res, err := stubRun(ctx, req, cfg)
		if err == nil && cfg.Tiers.Log != nil {
			res.Log = cache.LogStats{Appends: 512, Drains: 64, Nodes: 4}
		}
		return res, err
	}
	s := newTestServer(t, Config{}, capture)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const logged = `{"app":"prism","version":"C",
		"tiers":{"log":{"segment_bytes":262144,"drain_deadline_ms":10}}}`
	resp, out := postJSON(t, ts, "/v1/simulate", logged)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got.Tiers.Log == nil {
		t.Fatal("engine saw no log tier")
	}
	if got.Tiers.Log.SegmentBytes != 262144 || got.Tiers.Log.DrainDeadline != 10*time.Millisecond {
		t.Errorf("engine saw log config %+v", got.Tiers.Log)
	}
	var withLog SimulateResponse
	if err := json.Unmarshal(out, &withLog); err != nil {
		t.Fatal(err)
	}
	if withLog.Log == nil || withLog.Log.Appends != 512 {
		t.Errorf("response log block = %+v", withLog.Log)
	}
	_, out = postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
	var plain SimulateResponse
	if err := json.Unmarshal(out, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Log != nil {
		t.Errorf("tier-off response carries a log block: %+v", plain.Log)
	}
	if withLog.Hash == plain.Hash {
		t.Error("log-tier run shares the tier-off run's content address")
	}
}

func TestSimulateQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	blocking := func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return stubRun(ctx, req, cfg)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s := newTestServer(t, Config{Slots: 1, MaxQueue: 1}, blocking)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	// Occupy the slot, then the queue. Distinct seeds so the requests
	// don't coalesce.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, ts, "/v1/simulate",
				fmt.Sprintf(`{"app":"prism","version":"C","seed":%d}`, i+1))
		}(i)
	}
	<-started // slot holder is running
	// Wait for the second request to be parked in the admission queue.
	for i := 0; ; i++ {
		if s.adm.QueueLen() == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out := postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C","seed":99}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.rejected.Value() != 1 {
		t.Errorf("rejected counter = %d, want 1", s.rejected.Value())
	}
	release <- struct{}{}
	release <- struct{}{}
	wg.Wait()
}

func TestSimulateCoalescing(t *testing.T) {
	release := make(chan struct{})
	var runs sync.WaitGroup
	var runCount int32
	var mu sync.Mutex
	blocking := func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		mu.Lock()
		runCount++
		mu.Unlock()
		<-release
		return stubRun(ctx, req, cfg)
	}
	s := newTestServer(t, Config{Slots: 4, MaxQueue: 8}, blocking)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"app":"escat","version":"B"}`
	results := make(chan []byte, 3)
	for i := 0; i < 3; i++ {
		runs.Add(1)
		go func() {
			defer runs.Done()
			_, out := postJSON(t, ts, "/v1/simulate", body)
			results <- out
		}()
	}
	// Wait until all three requests are attached to one flight.
	for i := 0; ; i++ {
		s.flightMu.Lock()
		refs := 0
		for _, f := range s.flights {
			refs = f.refs
		}
		nf := len(s.flights)
		s.flightMu.Unlock()
		if nf == 1 && refs == 3 {
			break
		}
		if i > 5000 {
			t.Fatalf("flights=%d refs=%d, want one flight with 3 waiters", nf, refs)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	runs.Wait()
	if runCount != 1 {
		t.Errorf("engine ran %d times for 3 identical requests", runCount)
	}
	if s.coalesced.Value() != 2 {
		t.Errorf("coalesced counter = %d, want 2", s.coalesced.Value())
	}
	for i := 0; i < 3; i++ {
		var r SimulateResponse
		if err := json.Unmarshal(<-results, &r); err != nil {
			t.Fatal(err)
		}
		if r.Cached {
			t.Error("coalesced waiter served a cached response")
		}
	}
}

func TestAdviseEndpoint(t *testing.T) {
	s := newTestServer(t, Config{}, stubRun)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"app":"prism","version":"B"}`
	resp, out := postJSON(t, ts, "/v1/advise", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var adv AdviseResponse
	if err := json.Unmarshal(out, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Cached || !strings.HasPrefix(adv.Hash, "advise/") {
		t.Errorf("advise response: cached=%v hash=%q", adv.Cached, adv.Hash)
	}
	_, out2 := postJSON(t, ts, "/v1/advise", body)
	if !bytes.Contains(out2, []byte(`"cached":true`)) {
		t.Error("repeat advise not served from cache")
	}
	// The advise key namespace is disjoint from simulate's.
	_, out3 := postJSON(t, ts, "/v1/simulate", body)
	if bytes.Contains(out3, []byte(`"cached":true`)) {
		t.Error("simulate collided with the advise cache entry")
	}
}

func TestHealthzExperimentsMetrics(t *testing.T) {
	s := newTestServer(t, Config{}, stubRun)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, out := getURL(t, ts, "/healthz"); resp.StatusCode != 200 || string(out) != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, out)
	}

	resp, out := getURL(t, ts, "/v1/experiments")
	if resp.StatusCode != 200 {
		t.Fatalf("experiments status %d", resp.StatusCode)
	}
	var rows []struct{ ID, Title string }
	if err := json.Unmarshal(out, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) < 14 {
		t.Errorf("experiments listed %d entries, want the paper's 14", len(rows))
	}

	postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
	postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
	resp, out = getURL(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(out)
	for _, want := range []string{
		`iosimd_requests_total{endpoint="simulate",code="200"} 2`,
		"iosimd_cache_hits_total 1",
		"iosimd_cache_misses_total 1",
		"# TYPE iosimd_request_seconds histogram",
		"iosimd_run_seconds_count 1",
		"iosimd_inflight_slots 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestSDDFStream(t *testing.T) {
	s := newTestServer(t, Config{}, stubRun)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C","sddf":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if !bytes.HasPrefix(out, []byte("#SDDF")) {
		t.Errorf("stream is not SDDF: %.120s", out)
	}
	if s.cache.Len() != 0 {
		t.Error("SDDF response entered the result cache")
	}
}

// TestDaemonDeterminism runs a real (smallest) canonical simulation
// through the HTTP surface and pins its trace digest against the same
// golden value the CLI and test suite use: the daemon is a transport,
// not a second simulator.
func TestDaemonDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation run")
	}
	s := newTestServer(t, Config{}, nil) // real engine
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var r SimulateResponse
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatal(err)
	}
	// Golden digest from internal/experiments/determinism_test.go.
	if r.Digest != "0xbc010fbf3debceec" {
		t.Errorf("daemon prism/C digest %s, golden 0xbc010fbf3debceec", r.Digest)
	}
	if r.Events != 11396 {
		t.Errorf("daemon prism/C events %d, golden 11396", r.Events)
	}

	// The degraded run is just as deterministic: the disk-fail golden
	// from internal/experiments/faults_test.go, reachable over HTTP.
	resp, out = postJSON(t, ts, "/v1/simulate",
		`{"app":"prism","version":"C","faults":[{"kind":"disk-fail","at_ms":1000,"ionode":0}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("degraded status %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatal(err)
	}
	if r.Digest != "0x9ce1a397b722477e" {
		t.Errorf("daemon prism/C+disk-fail digest %s, golden 0x9ce1a397b722477e", r.Digest)
	}
	if r.Events != 11396 {
		t.Errorf("daemon prism/C+disk-fail events %d, golden 11396", r.Events)
	}
}
