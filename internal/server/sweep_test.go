package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"paragonio/internal/core"
)

// parseSweepBody splits an NDJSON sweep response into its plan line,
// point lines, and summary line.
func parseSweepBody(t *testing.T, body []byte) (sweepPlan, []sweepPointLine, sweepSummary) {
	t.Helper()
	var (
		plan                sweepPlan
		points              []sweepPointLine
		summary             sweepSummary
		sawPlan, sawSummary bool
	)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Plan bool `json:"plan"`
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, line)
		}
		switch {
		case probe.Plan:
			if sawPlan || len(points) > 0 {
				t.Fatal("plan line not first")
			}
			sawPlan = true
			if err := json.Unmarshal(line, &plan); err != nil {
				t.Fatal(err)
			}
		case probe.Done:
			sawSummary = true
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
		default:
			if sawSummary {
				t.Fatal("point line after summary")
			}
			var p sweepPointLine
			if err := json.Unmarshal(line, &p); err != nil {
				t.Fatal(err)
			}
			points = append(points, p)
		}
	}
	if !sawPlan || !sawSummary {
		t.Fatalf("sweep framing incomplete: plan=%v summary=%v\n%s", sawPlan, sawSummary, body)
	}
	return plan, points, summary
}

func TestSweepNDJSONGridAndDedup(t *testing.T) {
	var runCount atomic.Int32
	s := newTestServer(t, Config{}, func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		runCount.Add(1)
		return stubRun(ctx, req, cfg)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 3 versions × 2 seeds × 2 tier rungs = 12 points, all distinct.
	const grid = `{"app":"prism","versions":["A","B","C"],"seeds":[1,2],
		"tiers":[null,{"ionode":{"write_behind":true,"capacity_bytes":1048576}}]}`
	resp, body := postJSON(t, ts, "/v1/sweep", grid)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	plan, points, summary := parseSweepBody(t, body)
	if plan.Points != 12 || plan.Unique != 12 || plan.Invalid != 0 {
		t.Fatalf("plan = %+v, want 12/12/0", plan)
	}
	if len(points) != 12 || summary.OK != 12 || summary.Errors != 0 {
		t.Fatalf("%d point lines, summary %+v", len(points), summary)
	}
	seen := map[int]bool{}
	for _, p := range points {
		if p.Status != "ok" || p.Dedup != "" || len(p.Result) == 0 {
			t.Errorf("point %d: status=%q dedup=%q result=%d bytes", p.Point, p.Status, p.Dedup, len(p.Result))
		}
		var sr SimulateResponse
		if err := json.Unmarshal(p.Result, &sr); err != nil {
			t.Fatalf("point %d result: %v", p.Point, err)
		}
		if sr.Hash != p.Hash || sr.Cached {
			t.Errorf("point %d result hash %q (line %q) cached=%v", p.Point, sr.Hash, p.Hash, sr.Cached)
		}
		seen[p.Point] = true
	}
	if len(seen) != 12 {
		t.Errorf("point indices not unique: %v", seen)
	}
	if n := runCount.Load(); n != 12 {
		t.Errorf("engine ran %d times, want 12", n)
	}

	// The identical grid replays entirely from the result cache.
	_, body2 := postJSON(t, ts, "/v1/sweep", grid)
	_, points2, summary2 := parseSweepBody(t, body2)
	if summary2.OK != 12 || summary2.DedupCache != 12 {
		t.Fatalf("replay summary %+v, want 12 cache-deduped", summary2)
	}
	for _, p := range points2 {
		if p.Dedup != "cache" {
			t.Errorf("replay point %d dedup = %q", p.Point, p.Dedup)
		}
		var sr SimulateResponse
		if err := json.Unmarshal(p.Result, &sr); err != nil || !sr.Cached {
			t.Errorf("replay point %d not served cached (%v)", p.Point, err)
		}
	}
	if n := runCount.Load(); n != 12 {
		t.Errorf("replay re-ran the engine: %d runs", n)
	}
	if v := s.sweepDedup.With("cache").Value(); v != 12 {
		t.Errorf("iosimd_sweep_dedup_total{source=cache} = %d, want 12", v)
	}
	if v := s.sweepPoints.Value(); v != 24 {
		t.Errorf("iosimd_sweep_points_total = %d, want 24", v)
	}
}

// TestSweepFaultAxis: the fault ladder is a grid axis — each rung gets
// its own content address and its index comes back on the point line.
func TestSweepFaultAxis(t *testing.T) {
	s := newTestServer(t, Config{}, stubRun)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const grid = `{"app":"prism","versions":["C"],
		"faults":[null,[{"kind":"disk-fail","at_ms":1000,"ionode":0}],[{"kind":"straggler","at_ms":1000,"ionode":1,"factor":4}]]}`
	resp, body := postJSON(t, ts, "/v1/sweep", grid)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	plan, points, summary := parseSweepBody(t, body)
	if plan.Points != 3 || plan.Unique != 3 || summary.OK != 3 {
		t.Fatalf("plan %+v summary %+v, want 3 distinct ok points", plan, summary)
	}
	hashes := map[string]bool{}
	faultIdx := map[int]bool{}
	for _, p := range points {
		if p.Status != "ok" {
			t.Errorf("point %d: %q (%s)", p.Point, p.Status, p.Error)
		}
		hashes[p.Hash] = true
		faultIdx[p.Fault] = true
	}
	if len(hashes) != 3 {
		t.Errorf("fault rungs share content addresses: %v", hashes)
	}
	if !faultIdx[0] || !faultIdx[1] || !faultIdx[2] {
		t.Errorf("fault indices = %v, want {0,1,2}", faultIdx)
	}
	if v := s.faultRuns.Value(); v != 2 {
		t.Errorf("iosimd_fault_runs_total = %d, want 2 (healthy rung excluded)", v)
	}

	// A malformed rung is an invalid point, not a request failure.
	const badRung = `{"app":"prism","versions":["C"],"faults":[[{"kind":"disk-melt"}]]}`
	resp, body = postJSON(t, ts, "/v1/sweep", badRung)
	if resp.StatusCode != 200 {
		t.Fatalf("bad-rung status %d: %s", resp.StatusCode, body)
	}
	_, points, summary = parseSweepBody(t, body)
	if summary.Invalid != 1 || len(points) != 1 || points[0].Status != "invalid" {
		t.Errorf("bad rung: summary %+v points %+v", summary, points)
	}
	if !strings.Contains(points[0].Error, "unknown kind") {
		t.Errorf("bad rung error %q", points[0].Error)
	}
}

func TestSweepInRequestDedupAndInvalid(t *testing.T) {
	var runCount atomic.Int32
	s := newTestServer(t, Config{}, func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		runCount.Add(1)
		return stubRun(ctx, req, cfg)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Duplicate seeds collapse to one engine run per unique point, and
	// the bogus version yields invalid lines, not a failed sweep.
	resp, body := postJSON(t, ts, "/v1/sweep",
		`{"app":"prism","versions":["C","Z"],"seeds":[7,7]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	plan, points, summary := parseSweepBody(t, body)
	if plan.Points != 4 || plan.Unique != 1 || plan.Invalid != 2 {
		t.Fatalf("plan = %+v, want points=4 unique=1 invalid=2", plan)
	}
	if summary.OK != 2 || summary.Invalid != 2 || summary.DedupRequest != 1 {
		t.Fatalf("summary = %+v", summary)
	}
	var dupSeen bool
	for _, p := range points {
		switch {
		case p.Version == "Z":
			if p.Status != "invalid" || p.Error == "" {
				t.Errorf("invalid point %d: %+v", p.Point, p)
			}
		case p.Dedup == "request":
			dupSeen = true
			if p.Status != "ok" || len(p.Result) == 0 {
				t.Errorf("deduped point %d lacks the shared result: %+v", p.Point, p)
			}
		}
	}
	if !dupSeen {
		t.Error("no in-request dedup line emitted")
	}
	if n := runCount.Load(); n != 1 {
		t.Errorf("engine ran %d times, want 1", n)
	}

	// A grid over the configured cap is rejected up front.
	sCap := newTestServer(t, Config{MaxSweepPoints: 3}, stubRun)
	tsCap := httptest.NewServer(sCap.Handler())
	defer tsCap.Close()
	resp, body = postJSON(t, tsCap, "/v1/sweep", `{"app":"prism","versions":["A","B","C"],"seeds":[1,2]}`)
	if resp.StatusCode != 400 || !bytes.Contains(body, []byte("cap")) {
		t.Errorf("oversized sweep: status %d body %s", resp.StatusCode, body)
	}

	// A sweep with no versions is rejected.
	resp, _ = postJSON(t, ts, "/v1/sweep", `{"app":"prism"}`)
	if resp.StatusCode != 400 {
		t.Errorf("empty sweep: status %d", resp.StatusCode)
	}
}

// TestSweepSimulateCoalesce pins the cross-endpoint dedup contract: a
// /v1/simulate request and an overlapping /v1/sweep point share one
// refcounted engine run.
func TestSweepSimulateCoalesce(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	var runCount atomic.Int32
	// Two slots: the gated simulate run holds one while the sweep's B
	// point occupies the other, so both can be in flight together.
	s := newTestServer(t, Config{Slots: 2}, func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		runCount.Add(1)
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubRun(ctx, req, cfg)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	simDone := make(chan []byte, 1)
	go func() {
		_, out := postJSON(t, ts, "/v1/simulate", `{"app":"prism","version":"C"}`)
		simDone <- out
	}()
	<-started // the simulate request owns the flight now

	sweepDone := make(chan []byte, 1)
	go func() {
		_, out := postJSON(t, ts, "/v1/sweep", `{"app":"prism","versions":["B","C"]}`)
		sweepDone <- out
	}()
	// The sweep's B point starts its own run; its C point must join the
	// simulate flight instead, pushing that flight's refcount to 2.
	<-started
	for i := 0; ; i++ {
		s.flightMu.Lock()
		shared := 0
		for _, f := range s.flights {
			if f.refs == 2 {
				shared++
			}
		}
		n := len(s.flights)
		s.flightMu.Unlock()
		if shared == 1 && n == 2 {
			break
		}
		if i > 5000 {
			t.Fatalf("no shared flight: %d flights, %d shared", n, shared)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	var simResp SimulateResponse
	if err := json.Unmarshal(<-simDone, &simResp); err != nil {
		t.Fatal(err)
	}
	_, points, summary := parseSweepBody(t, <-sweepDone)
	if summary.OK != 2 || summary.DedupInflight != 1 {
		t.Fatalf("sweep summary %+v, want 2 ok / 1 inflight-dedup", summary)
	}
	for _, p := range points {
		if p.Version == "C" && p.Dedup != "inflight" {
			t.Errorf("C point dedup = %q, want inflight", p.Dedup)
		}
	}
	// Two runs total: sweep/B and the shared prism/C — never a third.
	if n := runCount.Load(); n != 2 {
		t.Errorf("engine ran %d times, want 2", n)
	}
	if v := s.coalesced.Value(); v != 1 {
		t.Errorf("iosimd_coalesced_total = %d, want 1", v)
	}
	if v := s.sweepDedup.With("inflight").Value(); v != 1 {
		t.Errorf("iosimd_sweep_dedup_total{source=inflight} = %d, want 1", v)
	}
}

// TestWarmRestart pins the warm-start index: a second daemon booted on
// the same spill directory answers a previously-run config from disk
// without invoking the engine.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{SpillDir: dir}, stubRun)
	ts1 := httptest.NewServer(s1.Handler())
	const body = `{"app":"prism","version":"C"}`
	resp, out := postJSON(t, ts1, "/v1/simulate", body)
	if resp.StatusCode != 200 {
		t.Fatalf("first daemon: status %d: %s", resp.StatusCode, out)
	}
	ts1.Close()

	s2 := newTestServer(t, Config{SpillDir: dir},
		func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
			t.Error("restarted daemon invoked the engine for a spilled config")
			return stubRun(ctx, req, cfg)
		})
	if n := s2.cache.SpilledLen(); n != 1 {
		t.Fatalf("warm-start index holds %d entries, want 1", n)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, out = postJSON(t, ts2, "/v1/simulate", body)
	if resp.StatusCode != 200 {
		t.Fatalf("restarted daemon: status %d: %s", resp.StatusCode, out)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Error("restarted daemon did not serve from the warm-start index")
	}
	if v := s2.spillHits.Value(); v != 1 {
		t.Errorf("iosimd_cache_spill_hits_total = %d, want 1", v)
	}

	// A version-tag mismatch purges the artifacts instead of serving
	// hashes that can no longer match.
	s3cache, err := NewResultCache(1<<20, dir, "v2-different")
	if err != nil {
		t.Fatal(err)
	}
	if n := s3cache.SpilledLen(); n != 0 {
		t.Errorf("stale-version boot kept %d artifacts", n)
	}
}

// TestSweepBeatsSequential is the acceptance benchmark: a 16-point
// ladder submitted as one /v1/sweep must complete in well under 60% of
// the wall-clock of 16 sequential /v1/simulate calls against an
// identical daemon (stub engine with a fixed per-run cost, 4 slots).
func TestSweepBeatsSequential(t *testing.T) {
	const delay = 20 * time.Millisecond
	run := func(ctx context.Context, req *SimulateRequest, cfg core.Config) (*core.Result, error) {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubRun(ctx, req, cfg)
	}
	seeds := make([]string, 16)
	for i := range seeds {
		seeds[i] = fmt.Sprint(i + 1)
	}

	seq := newTestServer(t, Config{Slots: 4}, run)
	tsSeq := httptest.NewServer(seq.Handler())
	defer tsSeq.Close()
	seqStart := time.Now()
	for _, seed := range seeds {
		resp, out := postJSON(t, tsSeq, "/v1/simulate",
			fmt.Sprintf(`{"app":"prism","version":"C","seed":%s}`, seed))
		if resp.StatusCode != 200 {
			t.Fatalf("sequential point: status %d: %s", resp.StatusCode, out)
		}
	}
	seqDur := time.Since(seqStart)

	batch := newTestServer(t, Config{Slots: 4}, run)
	tsBatch := httptest.NewServer(batch.Handler())
	defer tsBatch.Close()
	batchStart := time.Now()
	resp, body := postJSON(t, tsBatch, "/v1/sweep",
		fmt.Sprintf(`{"app":"prism","versions":["C"],"seeds":[%s]}`, strings.Join(seeds, ",")))
	batchDur := time.Since(batchStart)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	_, _, summary := parseSweepBody(t, body)
	if summary.OK != 16 {
		t.Fatalf("sweep summary %+v, want 16 ok", summary)
	}

	// 16 points × 20 ms sequentially vs 4-wide packing: the ideal ratio
	// is 0.25; the 0.6 acceptance bound leaves ample scheduler noise.
	if batchDur > seqDur*6/10 {
		t.Errorf("sweep took %v vs %v sequential (ratio %.2f, want <= 0.60)",
			batchDur, seqDur, float64(batchDur)/float64(seqDur))
	}
	t.Logf("16-point ladder: sequential %v, batched %v (ratio %.2f)",
		seqDur, batchDur, float64(batchDur)/float64(seqDur))
}
