package sddf

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func ioEventDesc() *Descriptor {
	return &Descriptor{
		Tag: 1, Name: "io-event",
		Fields: []Field{
			{"node", Int}, {"file", String}, {"offset", Int},
			{"size", Int}, {"dur", Double},
		},
	}
}

func utilDesc() *Descriptor {
	return &Descriptor{
		Tag: 2, Name: "utilization",
		Fields: []Field{{"t", Double}, {"ionode", Int}, {"busy", Double}},
	}
}

func TestDescriptorValidate(t *testing.T) {
	bad := []*Descriptor{
		{Tag: -1, Name: "x", Fields: []Field{{"a", Int}}},
		{Tag: 1, Name: "", Fields: []Field{{"a", Int}}},
		{Tag: 1, Name: "has space", Fields: []Field{{"a", Int}}},
		{Tag: 1, Name: "x"},
		{Tag: 1, Name: "x", Fields: []Field{{"a:b", Int}}},
		{Tag: 1, Name: "x", Fields: []Field{{"a", Int}, {"a", Int}}},
		{Tag: 1, Name: "x", Fields: []Field{{"a", FieldType(9)}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: invalid descriptor accepted", i)
		}
	}
	if err := ioEventDesc().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripInterleaved(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ioD, utD := ioEventDesc(), utilDesc()
	recs := []Record{
		mustRecord(t, ioD, int64(0), "escat/input.0", int64(0), int64(622), 0.45),
		mustRecord(t, utD, 1.5, int64(3), 0.92),
		mustRecord(t, ioD, int64(127), `weird "name"`, int64(131072), int64(131072), 0.003),
		mustRecord(t, utD, 2.5, int64(3), 0.12),
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	var got []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Desc.Name != recs[i].Desc.Name {
			t.Fatalf("record %d type %q, want %q", i, got[i].Desc.Name, recs[i].Desc.Name)
		}
		for j, v := range recs[i].Values {
			if got[i].Values[j] != v {
				t.Fatalf("record %d field %d: %v != %v", i, j, got[i].Values[j], v)
			}
		}
	}
	// Both descriptors discovered.
	descs := r.Descriptors()
	if len(descs) != 2 || descs[1].Name != "io-event" || descs[2].Name != "utilization" {
		t.Fatalf("descriptors = %v", descs)
	}
}

func mustRecord(t *testing.T, d *Descriptor, vals ...any) Record {
	t.Helper()
	r, err := NewRecord(d, vals...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFieldAccessors(t *testing.T) {
	r := mustRecord(t, ioEventDesc(), int64(7), "f", int64(10), int64(20), 0.5)
	if v, ok := r.Int("node"); !ok || v != 7 {
		t.Fatalf("Int(node) = %d, %v", v, ok)
	}
	if v, ok := r.Str("file"); !ok || v != "f" {
		t.Fatalf("Str(file) = %q, %v", v, ok)
	}
	if v, ok := r.Double("dur"); !ok || v != 0.5 {
		t.Fatalf("Double(dur) = %g, %v", v, ok)
	}
	if _, ok := r.Int("nosuch"); ok {
		t.Fatal("missing field reported present")
	}
	if _, ok := r.Int("file"); ok {
		t.Fatal("type-mismatched access reported ok")
	}
}

func TestNewRecordValidation(t *testing.T) {
	d := ioEventDesc()
	if _, err := NewRecord(d, int64(1)); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := NewRecord(d, "no", "f", int64(0), int64(0), 0.0); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestWriterTagConflict(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Define(ioEventDesc()); err != nil {
		t.Fatal(err)
	}
	other := utilDesc()
	other.Tag = 1
	if err := w.Define(other); err == nil {
		t.Fatal("tag conflict accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad magic":     "#NOPE\n",
		"unknown line":  magic + "\nX what\n",
		"record first":  magic + "\nR 1 2\n",
		"bad desc":      magic + "\nD x y z\n",
		"bad field":     magic + "\nD 1 t a-b\n",
		"short record":  magic + "\nD 1 t a:i b:i\nR 1 5\n",
		"bad int":       magic + "\nD 1 t a:i\nR 1 x\n",
		"bad string":    magic + "\nD 1 t a:s\nR 1 unquoted\n",
		"unterminated":  magic + "\nD 1 t a:s\nR 1 \"oops\n",
		"trailing data": magic + "\nD 1 t a:i\nR 1 5 6\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewReader(strings.NewReader(input))
			for {
				_, err := r.Next()
				if errors.Is(err, io.EOF) {
					t.Fatal("garbage stream parsed to EOF")
				}
				if err != nil {
					return // expected
				}
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := &Descriptor{Tag: 3, Name: "prop",
		Fields: []Field{{"i", Int}, {"s", String}, {"d", Double}}}
	f := func(iv int64, sv string, dv float64) bool {
		if dv != dv { // NaN does not round-trip through %g reliably
			return true
		}
		sv = strings.ReplaceAll(sv, "\n", " ")
		rec, err := NewRecord(d, iv, sv, dv)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil || w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		got, err := r.Next()
		if err != nil {
			return false
		}
		gi, _ := got.Int("i")
		gs, _ := got.Str("s")
		gd, _ := got.Double("d")
		return gi == iv && gs == sv && gd == dv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
