package sddf

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func ioEventDesc() *Descriptor {
	return &Descriptor{
		Tag: 1, Name: "io-event",
		Fields: []Field{
			{"node", Int}, {"file", String}, {"offset", Int},
			{"size", Int}, {"dur", Double},
		},
	}
}

func utilDesc() *Descriptor {
	return &Descriptor{
		Tag: 2, Name: "utilization",
		Fields: []Field{{"t", Double}, {"ionode", Int}, {"busy", Double}},
	}
}

func TestDescriptorValidate(t *testing.T) {
	bad := []*Descriptor{
		{Tag: -1, Name: "x", Fields: []Field{{"a", Int}}},
		{Tag: 1, Name: "", Fields: []Field{{"a", Int}}},
		{Tag: 1, Name: "has space", Fields: []Field{{"a", Int}}},
		{Tag: 1, Name: "x"},
		{Tag: 1, Name: "x", Fields: []Field{{"a:b", Int}}},
		{Tag: 1, Name: "x", Fields: []Field{{"a", Int}, {"a", Int}}},
		{Tag: 1, Name: "x", Fields: []Field{{"a", FieldType(9)}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: invalid descriptor accepted", i)
		}
	}
	if err := ioEventDesc().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripInterleaved(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ioD, utD := ioEventDesc(), utilDesc()
	recs := []Record{
		mustRecord(t, ioD, int64(0), "escat/input.0", int64(0), int64(622), 0.45),
		mustRecord(t, utD, 1.5, int64(3), 0.92),
		mustRecord(t, ioD, int64(127), `weird "name"`, int64(131072), int64(131072), 0.003),
		mustRecord(t, utD, 2.5, int64(3), 0.12),
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	var got []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Desc.Name != recs[i].Desc.Name {
			t.Fatalf("record %d type %q, want %q", i, got[i].Desc.Name, recs[i].Desc.Name)
		}
		for j, v := range recs[i].Values {
			if got[i].Values[j] != v {
				t.Fatalf("record %d field %d: %v != %v", i, j, got[i].Values[j], v)
			}
		}
	}
	// Both descriptors discovered.
	descs := r.Descriptors()
	if len(descs) != 2 || descs[1].Name != "io-event" || descs[2].Name != "utilization" {
		t.Fatalf("descriptors = %v", descs)
	}
}

func mustRecord(t *testing.T, d *Descriptor, vals ...any) Record {
	t.Helper()
	r, err := NewRecord(d, vals...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFieldAccessors(t *testing.T) {
	r := mustRecord(t, ioEventDesc(), int64(7), "f", int64(10), int64(20), 0.5)
	if v, ok := r.Int("node"); !ok || v != 7 {
		t.Fatalf("Int(node) = %d, %v", v, ok)
	}
	if v, ok := r.Str("file"); !ok || v != "f" {
		t.Fatalf("Str(file) = %q, %v", v, ok)
	}
	if v, ok := r.Double("dur"); !ok || v != 0.5 {
		t.Fatalf("Double(dur) = %g, %v", v, ok)
	}
	if _, ok := r.Int("nosuch"); ok {
		t.Fatal("missing field reported present")
	}
	if _, ok := r.Int("file"); ok {
		t.Fatal("type-mismatched access reported ok")
	}
}

func TestNewRecordValidation(t *testing.T) {
	d := ioEventDesc()
	if _, err := NewRecord(d, int64(1)); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := NewRecord(d, "no", "f", int64(0), int64(0), 0.0); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestWriterTagConflict(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Define(ioEventDesc()); err != nil {
		t.Fatal(err)
	}
	other := utilDesc()
	other.Tag = 1
	if err := w.Define(other); err == nil {
		t.Fatal("tag conflict accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad magic":     "#NOPE\n",
		"unknown line":  magic + "\nX what\n",
		"record first":  magic + "\nR 1 2\n",
		"bad desc":      magic + "\nD x y z\n",
		"bad field":     magic + "\nD 1 t a-b\n",
		"short record":  magic + "\nD 1 t a:i b:i\nR 1 5\n",
		"bad int":       magic + "\nD 1 t a:i\nR 1 x\n",
		"bad string":    magic + "\nD 1 t a:s\nR 1 unquoted\n",
		"unterminated":  magic + "\nD 1 t a:s\nR 1 \"oops\n",
		"trailing data": magic + "\nD 1 t a:i\nR 1 5 6\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewReader(strings.NewReader(input))
			for {
				_, err := r.Next()
				if errors.Is(err, io.EOF) {
					t.Fatal("garbage stream parsed to EOF")
				}
				if err != nil {
					return // expected
				}
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := &Descriptor{Tag: 3, Name: "prop",
		Fields: []Field{{"i", Int}, {"s", String}, {"d", Double}}}
	f := func(iv int64, sv string, dv float64) bool {
		if dv != dv { // NaN does not round-trip through %g reliably
			return true
		}
		sv = strings.ReplaceAll(sv, "\n", " ")
		rec, err := NewRecord(d, iv, sv, dv)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil || w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		got, err := r.Next()
		if err != nil {
			return false
		}
		gi, _ := got.Int("i")
		gs, _ := got.Str("s")
		gd, _ := got.Double("d")
		return gi == iv && gs == sv && gd == dv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderRoundTrip drives the allocation-free Begin/…/End path and
// checks the emitted stream parses back identically to the boxed path.
func TestBuilderRoundTrip(t *testing.T) {
	d := ioEventDesc()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Begin(d); err != nil {
			t.Fatal(err)
		}
		if err := w.Int(int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Str("escat/restart.0"); err != nil {
			t.Fatal(err)
		}
		if err := w.Int(int64(i) * 4096); err != nil {
			t.Fatal(err)
		}
		if err := w.Int(4096); err != nil {
			t.Fatal(err)
		}
		if err := w.Double(float64(i) / 2); err != nil {
			t.Fatal(err)
		}
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 3; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := rec.Int("node"); n != int64(i) {
			t.Fatalf("record %d: node = %d", i, n)
		}
		if f, _ := rec.Str("file"); f != "escat/restart.0" {
			t.Fatalf("record %d: file = %q", i, f)
		}
		if dv, _ := rec.Double("dur"); dv != float64(i)/2 {
			t.Fatalf("record %d: dur = %g", i, dv)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestBuilderMisuse pins the builder's error contract: type mismatches,
// arity violations and out-of-record values fail cleanly, and a failed
// record is abandoned so the writer stays usable.
func TestBuilderMisuse(t *testing.T) {
	d := ioEventDesc()
	var buf bytes.Buffer
	w := NewWriter(&buf)

	if err := w.Int(1); err == nil {
		t.Fatal("value outside a record accepted")
	}
	if err := w.End(); err == nil {
		t.Fatal("End without Begin accepted")
	}
	if err := w.Begin(d); err != nil {
		t.Fatal(err)
	}
	if err := w.Str("wrong"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// The mismatch abandoned the record: a fresh Begin must work …
	if err := w.Begin(d); err != nil {
		t.Fatalf("writer unusable after abandoned record: %v", err)
	}
	if err := w.Int(1); err != nil {
		t.Fatal(err)
	}
	// … and a short record is rejected at End.
	if err := w.End(); err == nil {
		t.Fatal("short record accepted")
	}
	// A complete record still goes through afterwards.
	if err := w.Begin(d); err != nil {
		t.Fatal(err)
	}
	for _, step := range []error{
		w.Int(7), w.Str("f"), w.Int(0), w.Int(512), w.Double(1.5),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	if err := w.Int(9); err == nil {
		t.Fatal("excess value accepted")
	}
	// The excess value abandoned the record too.
	if err := w.End(); err == nil {
		t.Fatal("End after abandoned record accepted")
	}
}

// TestBuilderZeroAlloc pins the builder's whole point: steady-state
// record encoding performs zero heap allocations per record.
func TestBuilderZeroAlloc(t *testing.T) {
	d := ioEventDesc()
	w := NewWriter(io.Discard)
	emit := func() {
		if err := w.Begin(d); err != nil {
			t.Fatal(err)
		}
		if err := w.Int(3); err != nil {
			t.Fatal(err)
		}
		if err := w.Str("escat/input.0"); err != nil {
			t.Fatal(err)
		}
		if err := w.Int(1 << 20); err != nil {
			t.Fatal(err)
		}
		if err := w.Int(65536); err != nil {
			t.Fatal(err)
		}
		if err := w.Double(0.25); err != nil {
			t.Fatal(err)
		}
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	}
	emit() // warm up: define the descriptor, size the scratch buffer
	if allocs := testing.AllocsPerRun(100, emit); allocs != 0 {
		t.Fatalf("builder encode allocates %.1f times per record, want 0", allocs)
	}
}
