// Package sddf implements a Self-Describing Data Format in the spirit
// of Pablo's SDDF: streams carry their own record-type descriptors
// (name, tag, typed fields), so consumers can parse record kinds they
// have never seen. The reproduction's I/O event traces are one record
// type among others (e.g., utilization samples); offline tools iterate
// records generically and dispatch on descriptor names.
//
// Text layout, line-oriented:
//
//	#SDDF-G v1
//	D 1 io-event node:i file:s offset:i size:i start:i dur:i mode:s
//	R 1 0 "escat/input.0" 0 622 1200 450000 "M_UNIX"
//
// Descriptors must precede their records; a stream may interleave
// multiple record types.
package sddf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FieldType is the type of one descriptor field.
type FieldType int

const (
	// Int fields hold int64 values.
	Int FieldType = iota
	// Double fields hold float64 values.
	Double
	// String fields hold free text (quoted on the wire).
	String
)

// String returns the single-letter wire code.
func (t FieldType) String() string {
	switch t {
	case Int:
		return "i"
	case Double:
		return "d"
	case String:
		return "s"
	}
	return "?"
}

func parseFieldType(s string) (FieldType, error) {
	switch s {
	case "i":
		return Int, nil
	case "d":
		return Double, nil
	case "s":
		return String, nil
	}
	return 0, fmt.Errorf("sddf: unknown field type %q", s)
}

// Field is one named, typed slot of a record type.
type Field struct {
	Name string
	Type FieldType
}

// Descriptor defines a record type: a numeric tag (unique within a
// stream), a name, and ordered fields.
type Descriptor struct {
	Tag    int
	Name   string
	Fields []Field
}

// Validate reports whether the descriptor is well-formed.
func (d *Descriptor) Validate() error {
	if d.Tag < 0 {
		return fmt.Errorf("sddf: negative tag %d", d.Tag)
	}
	if d.Name == "" || strings.ContainsAny(d.Name, " \t\n\"") {
		return fmt.Errorf("sddf: invalid descriptor name %q", d.Name)
	}
	if len(d.Fields) == 0 {
		return fmt.Errorf("sddf: descriptor %q has no fields", d.Name)
	}
	seen := map[string]bool{}
	for _, f := range d.Fields {
		if f.Name == "" || strings.ContainsAny(f.Name, " \t\n:\"") {
			return fmt.Errorf("sddf: invalid field name %q", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("sddf: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Type != Int && f.Type != Double && f.Type != String {
			return fmt.Errorf("sddf: field %q has invalid type", f.Name)
		}
	}
	return nil
}

// index returns the position of the named field, or -1.
func (d *Descriptor) index(name string) int {
	for i, f := range d.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Record is one instance of a record type: values parallel to the
// descriptor's fields (int64, float64 or string).
type Record struct {
	Desc   *Descriptor
	Values []any
}

// NewRecord builds a record after checking arity and types.
func NewRecord(d *Descriptor, values ...any) (Record, error) {
	if len(values) != len(d.Fields) {
		return Record{}, fmt.Errorf("sddf: %q expects %d values, got %d",
			d.Name, len(d.Fields), len(values))
	}
	for i, v := range values {
		switch d.Fields[i].Type {
		case Int:
			if _, ok := v.(int64); !ok {
				return Record{}, fmt.Errorf("sddf: field %q wants int64, got %T",
					d.Fields[i].Name, v)
			}
		case Double:
			if _, ok := v.(float64); !ok {
				return Record{}, fmt.Errorf("sddf: field %q wants float64, got %T",
					d.Fields[i].Name, v)
			}
		case String:
			if _, ok := v.(string); !ok {
				return Record{}, fmt.Errorf("sddf: field %q wants string, got %T",
					d.Fields[i].Name, v)
			}
		}
	}
	return Record{Desc: d, Values: values}, nil
}

// Int returns the named Int field's value; ok is false if the field is
// absent or of another type.
func (r Record) Int(name string) (int64, bool) {
	i := r.Desc.index(name)
	if i < 0 {
		return 0, false
	}
	v, ok := r.Values[i].(int64)
	return v, ok
}

// Double returns the named Double field's value.
func (r Record) Double(name string) (float64, bool) {
	i := r.Desc.index(name)
	if i < 0 {
		return 0, false
	}
	v, ok := r.Values[i].(float64)
	return v, ok
}

// Str returns the named String field's value.
func (r Record) Str(name string) (string, bool) {
	i := r.Desc.index(name)
	if i < 0 {
		return "", false
	}
	v, ok := r.Values[i].(string)
	return v, ok
}

const magic = "#SDDF-G v1"

// Writer emits a self-describing stream. Descriptors are written on
// first use.
//
// Two record paths exist: Write takes a boxed Record (convenient, one
// []any per record), and the Begin/Int/Double/Str/End builder encodes
// straight into a reusable buffer with no per-record allocation — the
// path trace exporters use (see pablo.WriteSDDF).
type Writer struct {
	bw      *bufio.Writer
	defined map[int]*Descriptor
	started bool

	buf   []byte      // reusable line scratch for the builder path
	cur   *Descriptor // descriptor of the open builder record, nil when none
	field int         // next field index of the open record
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w), defined: make(map[int]*Descriptor)}
}

func (w *Writer) start() error {
	if w.started {
		return nil
	}
	w.started = true
	_, err := fmt.Fprintln(w.bw, magic)
	return err
}

// Define registers and emits a descriptor. Redefining a tag with a
// different descriptor is an error; redefining the identical descriptor
// is a no-op.
func (w *Writer) Define(d *Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if err := w.start(); err != nil {
		return err
	}
	if prev, ok := w.defined[d.Tag]; ok {
		if prev != d {
			return fmt.Errorf("sddf: tag %d already defined as %q", d.Tag, prev.Name)
		}
		return nil
	}
	w.defined[d.Tag] = d
	b := append(w.buf[:0], 'D', ' ')
	b = strconv.AppendInt(b, int64(d.Tag), 10)
	b = append(b, ' ')
	b = append(b, d.Name...)
	for _, f := range d.Fields {
		b = append(b, ' ')
		b = append(b, f.Name...)
		b = append(b, ':')
		b = append(b, f.Type.String()...)
	}
	b = append(b, '\n')
	w.buf = b[:0]
	_, err := w.bw.Write(b)
	return err
}

// Begin opens one record of type d on the builder path. Values follow
// via Int/Double/Str in descriptor-field order and End commits the line;
// the whole sequence reuses one scratch buffer, so steady-state encoding
// allocates nothing.
func (w *Writer) Begin(d *Descriptor) error {
	if w.cur != nil {
		return fmt.Errorf("sddf: Begin with record %q still open", w.cur.Name)
	}
	if d == nil {
		return fmt.Errorf("sddf: record without descriptor")
	}
	if err := w.Define(d); err != nil {
		return err
	}
	w.cur, w.field = d, 0
	w.buf = append(w.buf[:0], 'R', ' ')
	w.buf = strconv.AppendInt(w.buf, int64(d.Tag), 10)
	return nil
}

// next checks that the open record's next field has type t and accounts
// for it, appending the separator. Errors abandon the open record.
func (w *Writer) next(t FieldType) error {
	if w.cur == nil {
		return fmt.Errorf("sddf: value outside a record")
	}
	if w.field >= len(w.cur.Fields) {
		err := fmt.Errorf("sddf: too many values for %q", w.cur.Name)
		w.cur = nil
		return err
	}
	if f := w.cur.Fields[w.field]; f.Type != t {
		err := fmt.Errorf("sddf: field %q wants %s, got %s", f.Name, f.Type, t)
		w.cur = nil
		return err
	}
	w.field++
	w.buf = append(w.buf, ' ')
	return nil
}

// Int appends the open record's next field, which must be an Int.
func (w *Writer) Int(v int64) error {
	if err := w.next(Int); err != nil {
		return err
	}
	w.buf = strconv.AppendInt(w.buf, v, 10)
	return nil
}

// Double appends the open record's next field, which must be a Double.
func (w *Writer) Double(v float64) error {
	if err := w.next(Double); err != nil {
		return err
	}
	w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64)
	return nil
}

// Str appends the open record's next field, which must be a String.
func (w *Writer) Str(v string) error {
	if err := w.next(String); err != nil {
		return err
	}
	w.buf = strconv.AppendQuote(w.buf, v)
	return nil
}

// End commits the open record's line.
func (w *Writer) End() error {
	if w.cur == nil {
		return fmt.Errorf("sddf: End without Begin")
	}
	d := w.cur
	w.cur = nil
	if w.field != len(d.Fields) {
		return fmt.Errorf("sddf: record %q short: %d of %d values",
			d.Name, w.field, len(d.Fields))
	}
	w.buf = append(w.buf, '\n')
	_, err := w.bw.Write(w.buf)
	return err
}

// Write emits one boxed record, defining its descriptor if needed.
func (w *Writer) Write(r Record) error {
	if r.Desc == nil {
		return fmt.Errorf("sddf: record without descriptor")
	}
	if len(r.Values) != len(r.Desc.Fields) {
		return fmt.Errorf("sddf: record arity %d != descriptor %q arity %d",
			len(r.Values), r.Desc.Name, len(r.Desc.Fields))
	}
	if err := w.Begin(r.Desc); err != nil {
		return err
	}
	for i, v := range r.Values {
		f := r.Desc.Fields[i]
		var err error
		switch f.Type {
		case Int:
			iv, ok := v.(int64)
			if !ok {
				w.cur = nil
				return fmt.Errorf("sddf: field %q wants int64, got %T", f.Name, v)
			}
			err = w.Int(iv)
		case Double:
			dv, ok := v.(float64)
			if !ok {
				w.cur = nil
				return fmt.Errorf("sddf: field %q wants float64, got %T", f.Name, v)
			}
			err = w.Double(dv)
		case String:
			sv, ok := v.(string)
			if !ok {
				w.cur = nil
				return fmt.Errorf("sddf: field %q wants string, got %T", f.Name, v)
			}
			err = w.Str(sv)
		}
		if err != nil {
			return err
		}
	}
	return w.End()
}

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader consumes a self-describing stream.
type Reader struct {
	sc      *bufio.Scanner
	descs   map[int]*Descriptor
	line    int
	started bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	return &Reader{sc: sc, descs: make(map[int]*Descriptor)}
}

// Descriptors returns the record types seen so far, keyed by tag.
func (r *Reader) Descriptors() map[int]*Descriptor {
	out := make(map[int]*Descriptor, len(r.descs))
	for k, v := range r.descs {
		out[k] = v
	}
	return out
}

// Next returns the next record, io.EOF at end of stream, or a parse
// error. Descriptor lines are consumed transparently.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" {
			continue
		}
		if !r.started {
			if line != magic {
				return Record{}, fmt.Errorf("sddf: line %d: bad magic %q", r.line, line)
			}
			r.started = true
			continue
		}
		switch {
		case strings.HasPrefix(line, "D "):
			if err := r.parseDescriptor(line[2:]); err != nil {
				return Record{}, fmt.Errorf("sddf: line %d: %w", r.line, err)
			}
		case strings.HasPrefix(line, "R "):
			rec, err := r.parseRecord(line[2:])
			if err != nil {
				return Record{}, fmt.Errorf("sddf: line %d: %w", r.line, err)
			}
			return rec, nil
		default:
			return Record{}, fmt.Errorf("sddf: line %d: unknown line %q", r.line, line)
		}
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	if !r.started {
		return Record{}, fmt.Errorf("sddf: empty stream")
	}
	return Record{}, io.EOF
}

func (r *Reader) parseDescriptor(s string) error {
	parts := strings.Fields(s)
	if len(parts) < 3 {
		return fmt.Errorf("short descriptor %q", s)
	}
	tag, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad tag %q", parts[0])
	}
	d := &Descriptor{Tag: tag, Name: parts[1]}
	for _, fs := range parts[2:] {
		name, ty, ok := strings.Cut(fs, ":")
		if !ok {
			return fmt.Errorf("bad field spec %q", fs)
		}
		ft, err := parseFieldType(ty)
		if err != nil {
			return err
		}
		d.Fields = append(d.Fields, Field{Name: name, Type: ft})
	}
	if err := d.Validate(); err != nil {
		return err
	}
	if prev, ok := r.descs[tag]; ok && prev.Name != d.Name {
		return fmt.Errorf("tag %d redefined from %q to %q", tag, prev.Name, d.Name)
	}
	r.descs[tag] = d
	return nil
}

func (r *Reader) parseRecord(s string) (Record, error) {
	tagStr, rest, _ := strings.Cut(s, " ")
	tag, err := strconv.Atoi(tagStr)
	if err != nil {
		return Record{}, fmt.Errorf("bad record tag %q", tagStr)
	}
	d, ok := r.descs[tag]
	if !ok {
		return Record{}, fmt.Errorf("record with undefined tag %d", tag)
	}
	values := make([]any, 0, len(d.Fields))
	for _, f := range d.Fields {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return Record{}, fmt.Errorf("record %q truncated at field %q", d.Name, f.Name)
		}
		switch f.Type {
		case String:
			if rest[0] != '"' {
				return Record{}, fmt.Errorf("field %q: expected quoted string", f.Name)
			}
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return Record{}, fmt.Errorf("field %q: unterminated string", f.Name)
			}
			sv, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return Record{}, fmt.Errorf("field %q: %v", f.Name, err)
			}
			values = append(values, sv)
			rest = rest[end+1:]
		default:
			var tok string
			tok, rest, _ = strings.Cut(rest, " ")
			if f.Type == Int {
				iv, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return Record{}, fmt.Errorf("field %q: bad int %q", f.Name, tok)
				}
				values = append(values, iv)
			} else {
				dv, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return Record{}, fmt.Errorf("field %q: bad double %q", f.Name, tok)
				}
				values = append(values, dv)
			}
		}
	}
	if strings.TrimSpace(rest) != "" {
		return Record{}, fmt.Errorf("record %q has trailing data %q", d.Name, rest)
	}
	return Record{Desc: d, Values: values}, nil
}
