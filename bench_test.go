package paragonio_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one benchmark per artifact) and runs the ablation
// studies DESIGN.md calls out. Each artifact benchmark reports, besides
// the usual ns/op of regenerating it, the headline measured quantity as
// a custom metric so `go test -bench` output doubles as a results sheet.
//
// Artifact regeneration re-simulates the full paper workloads (128-node
// ESCAT, 64-node PRISM, 256-node carbon monoxide), so a full -bench=.
// sweep takes a few minutes; use -benchtime=1x for a single regeneration
// of each.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/core"
	"paragonio/internal/disk"
	"paragonio/internal/experiments"
	"paragonio/internal/iobench"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/policy"
	"paragonio/internal/sim"
	"paragonio/internal/workload"
)

// benchArtifact regenerates one experiment per iteration and reports the
// named measured metrics.
func benchArtifact(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var art *experiments.Artifact
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite(1) // fresh: measure full regeneration
		var err error
		art, err = e.Run(suite)
		if err != nil {
			b.Fatal(err)
		}
		// Artifacts carry only rendered text and metric maps, no trace
		// views, so the buffers can go back to the event pool.
		suite.Release()
	}
	for _, m := range metrics {
		if v, ok := art.Measured[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// ---- one benchmark per paper table ----

func BenchmarkTable1ESCATModes(b *testing.B) {
	benchArtifact(b, "table1")
}

func BenchmarkTable2ESCATIOTime(b *testing.B) {
	benchArtifact(b, "table2", "A.open", "B.seek", "C.write")
}

func BenchmarkTable3ESCATExecShare(b *testing.B) {
	benchArtifact(b, "table3", "eth.A.allio", "eth.B.allio", "eth.C.allio", "co.C.allio")
}

func BenchmarkTable4PRISMModes(b *testing.B) {
	benchArtifact(b, "table4")
}

func BenchmarkTable5PRISMIOTime(b *testing.B) {
	benchArtifact(b, "table5", "A.open", "B.open", "C.read")
}

// ---- one benchmark per paper figure ----

func BenchmarkFigure1ESCATProgression(b *testing.B) {
	benchArtifact(b, "figure1", "exec.A", "exec.C", "reduction.pct")
}

func BenchmarkFigure2ESCATCDF(b *testing.B) {
	benchArtifact(b, "figure2", "A.reads.small.frac", "C.readdata.large128K.frac")
}

func BenchmarkFigure3ESCATReadTimeline(b *testing.B) {
	benchArtifact(b, "figure3", "A.reads", "C.reads")
}

func BenchmarkFigure4ESCATWriteTimeline(b *testing.B) {
	benchArtifact(b, "figure4", "A.staging.sizes", "C.staging.sizes")
}

func BenchmarkFigure5ESCATSeeks(b *testing.B) {
	benchArtifact(b, "figure5", "B.seek.max_s", "C.seek.max_s")
}

func BenchmarkFigure6PRISMProgression(b *testing.B) {
	benchArtifact(b, "figure6", "exec.A", "exec.C", "reduction.pct")
}

func BenchmarkFigure7PRISMCDF(b *testing.B) {
	benchArtifact(b, "figure7", "A.readdata.large.frac", "smallreads.ratio.AoverC")
}

func BenchmarkFigure8PRISMReadTimeline(b *testing.B) {
	benchArtifact(b, "figure8", "A.readspan_s", "B.readspan_s", "C.readspan_s")
}

func BenchmarkFigure9PRISMWriteTimeline(b *testing.B) {
	benchArtifact(b, "figure9", "checkpoints.visible")
}

// ---- ablation studies (DESIGN.md section 6) ----
// Each reports the *virtual* completion time of a fixed workload as the
// configuration knob sweeps; virtual_s is the scientifically meaningful
// output.

// collectiveReadWorkload: 32 nodes read a 32 MB file in 128 KB M_RECORD
// rounds on a machine with the given PFS geometry.
func collectiveReadWorkload(b *testing.B, ioNodes int, stripe int64) float64 {
	b.Helper()
	cfg := core.Config{Nodes: 32, Seed: 1, IONodes: ioNodes, StripeUnit: stripe}
	res, err := core.Run(cfg, "ablation", "sweep", func(m *workload.Machine, seed int64) error {
		m.FS.CreateFile("data", 32<<20)
		ids := make([]int, m.Nodes)
		for i := range ids {
			ids[i] = i
		}
		g, err := m.FS.NewGroup(ids)
		if err != nil {
			return err
		}
		m.SpawnNodes(seed, func(n *workload.Node) {
			h, err := g.Gopen(n.P, n.ID, "data", pfs.MRecord)
			if err != nil {
				panic(err)
			}
			h.SetBuffering(false)
			rounds := int((32 << 20) / (128 << 10) / int64(m.Nodes))
			for r := 0; r < rounds; r++ {
				if _, err := h.Read(n.P, 128<<10); err != nil {
					panic(err)
				}
			}
			h.Close(n.P)
		})
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Exec.Seconds()
}

// BenchmarkAblationIONodes sweeps the I/O node count — the machine
// configuration study the paper's future work proposes.
func BenchmarkAblationIONodes(b *testing.B) {
	for _, ion := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("ionodes=%d", ion), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = collectiveReadWorkload(b, ion, 64<<10)
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}

// BenchmarkAblationStripeUnit sweeps the stripe unit against the fixed
// 128 KB request size; the paper's rule — requests should be stripe
// multiples — shows as the minimum.
func BenchmarkAblationStripeUnit(b *testing.B) {
	for _, su := range []int64{16 << 10, 64 << 10, 128 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("stripe=%dKB", su>>10), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = collectiveReadWorkload(b, 16, su)
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}

// BenchmarkAblationAggregation quantifies section 7's request
// aggregation: the version A staging write stream, raw vs aggregated.
func BenchmarkAblationAggregation(b *testing.B) {
	run := func(aggregate bool) float64 {
		res, err := core.Run(core.Config{Nodes: 1, Seed: 1}, "ablation", "agg",
			func(m *workload.Machine, seed int64) error {
				m.SpawnNodes(seed, func(n *workload.Node) {
					h, err := m.FS.Open(n.P, 0, "quad", pfs.MUnix)
					if err != nil {
						panic(err)
					}
					if aggregate {
						w := policy.NewAggWriter(h, 0)
						for i := 0; i < 4000; i++ {
							w.Write(n.P, 1664)
						}
						w.Flush(n.P)
					} else {
						for i := 0; i < 4000; i++ {
							h.Write(n.P, 1664)
						}
					}
					h.Close(n.P)
				})
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return res.Exec.Seconds()
	}
	for _, agg := range []bool{false, true} {
		name := "raw"
		if agg {
			name = "aggregated"
		}
		b.Run(name, func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = run(agg)
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}

// BenchmarkAblationBuffering quantifies the PRISM version C mistake: the
// restart header consultation stream with client buffering on vs off.
func BenchmarkAblationBuffering(b *testing.B) {
	run := func(buffered bool) float64 {
		res, err := core.Run(core.Config{Nodes: 16, Seed: 1}, "ablation", "buf",
			func(m *workload.Machine, seed int64) error {
				m.FS.CreateFile("restart", 1<<20)
				m.SpawnNodes(seed, func(n *workload.Node) {
					h, err := m.FS.Open(n.P, n.ID, "restart", pfs.MAsync)
					if err != nil {
						panic(err)
					}
					h.SetBuffering(buffered)
					// The same header field is consulted repeatedly, as
					// PRISM's setup code does: with buffering each consult
					// is a copy; without it, a full disk round trip.
					for i := 0; i < 100; i++ {
						if err := h.Seek(n.P, 0); err != nil {
							panic(err)
						}
						if _, err := h.Read(n.P, 36); err != nil {
							panic(err)
						}
					}
					h.Close(n.P)
				})
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return res.Exec.Seconds()
	}
	for _, buffered := range []bool{true, false} {
		name := "buffered"
		if !buffered {
			name = "unbuffered"
		}
		b.Run(name, func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = run(buffered)
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}

// BenchmarkAblationSeeksPerWrite isolates the version B pathology: the
// ESCAT staging cycle with 0, 1 and 2 shared-state seeks per write.
func BenchmarkAblationSeeksPerWrite(b *testing.B) {
	run := func(seeks int) float64 {
		res, err := core.Run(core.Config{Nodes: 32, Seed: 1}, "ablation", "seeks",
			func(m *workload.Machine, seed int64) error {
				all := m.NewCollective("all", m.Nodes)
				m.SpawnNodes(seed, func(n *workload.Node) {
					h, err := m.FS.Open(n.P, n.ID, "quad", pfs.MUnix)
					if err != nil {
						panic(err)
					}
					for cyc := 0; cyc < 8; cyc++ {
						n.ComputeJitter(time.Second, 200*time.Millisecond)
						all.Barrier(n)
						off := int64(cyc*m.Nodes+n.ID) * 2720
						for s := 0; s < seeks; s++ {
							if err := h.Seek(n.P, off); err != nil {
								panic(err)
							}
						}
						if _, err := h.Write(n.P, 2720); err != nil {
							panic(err)
						}
					}
					h.Close(n.P)
				})
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return res.Exec.Seconds()
	}
	for _, seeks := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("seeks=%d", seeks), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = run(seeks)
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}

// ---- simulator micro-benchmarks (real-time cost of the engine) ----

func BenchmarkKernelEventDispatch(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelTimedWaitChurn measures pure timer churn through the
// 4-ary event heap: 64 interleaved callback chains with staggered
// periods, so pushes and pops constantly reorder the heap with no
// goroutine handoffs at all.
func BenchmarkKernelTimedWaitChurn(b *testing.B) {
	k := sim.NewKernel()
	const chains = 64
	per := b.N/chains + 1
	for c := 0; c < chains; c++ {
		period := time.Duration(c+1) * time.Microsecond
		left := per
		var hop func()
		hop = func() {
			left--
			if left > 0 {
				k.After(period, hop)
			}
		}
		k.After(period, hop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelResourceContention hammers one capacity-1 server with 32
// clients, comparing the process-shaped path (Use: two goroutine handoffs
// per grant) against the callback fast path (UseFn: zero).
func BenchmarkKernelResourceContention(b *testing.B) {
	const clients = 32
	b.Run("proc", func(b *testing.B) {
		k := sim.NewKernel()
		r := sim.NewResource(k, "srv", 1)
		per := b.N/clients + 1
		for c := 0; c < clients; c++ {
			k.Spawn("client", func(p *sim.Proc) {
				for i := 0; i < per; i++ {
					r.Use(p, time.Microsecond)
				}
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("callback", func(b *testing.B) {
		k := sim.NewKernel()
		r := sim.NewResource(k, "srv", 1)
		per := b.N/clients + 1
		for c := 0; c < clients; c++ {
			left := per
			var use func()
			use = func() {
				left--
				if left > 0 {
					r.UseFn(func() sim.Time { return time.Microsecond }, use)
				} else {
					r.UseFn(func() sim.Time { return time.Microsecond }, nil)
				}
			}
			k.After(0, use)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkKernelMailboxPingPong bounces one message between two parties,
// process-shaped (Recv parks a goroutine each round trip) vs
// callback-shaped (RecvFn re-arms a delivery callback).
func BenchmarkKernelMailboxPingPong(b *testing.B) {
	b.Run("proc", func(b *testing.B) {
		k := sim.NewKernel()
		ping := sim.NewMailbox(k, "ping")
		pong := sim.NewMailbox(k, "pong")
		k.Spawn("a", func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				ping.Send(i)
				pong.Recv(p)
			}
		})
		k.Spawn("b", func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				pong.Send(ping.Recv(p))
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("callback", func(b *testing.B) {
		k := sim.NewKernel()
		ping := sim.NewMailbox(k, "ping")
		pong := sim.NewMailbox(k, "pong")
		left := b.N
		var onPing, onPong func(v any)
		onPing = func(v any) {
			pong.Send(v)
			ping.RecvFn(onPing)
		}
		onPong = func(v any) {
			left--
			if left > 0 {
				ping.Send(left)
				pong.RecvFn(onPong)
			}
		}
		ping.RecvFn(onPing)
		pong.RecvFn(onPong)
		k.After(0, func() { ping.Send(left) })
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSuiteParallel regenerates the entire artifact suite through
// the worker-pool runner, serial vs all cores — the wall-clock win the
// iotables -j flag buys. Use -benchtime=1x: one iteration re-simulates
// every paper workload.
func BenchmarkSuiteParallel(b *testing.B) {
	runAll := func(b *testing.B, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunAll(experiments.NewSuite(1), nil, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { runAll(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		runAll(b, runtime.GOMAXPROCS(0))
	})
	// All cores at both levels: experiments in parallel AND each
	// simulation sharded — the end-to-end configuration of
	// `iotables -j 0 -shards auto`.
	b.Run(fmt.Sprintf("workers=%d/shards=%d", runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := experiments.NewSuite(1)
			s.Shards = runtime.GOMAXPROCS(0)
			if _, err := experiments.RunAll(s, nil, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedCarbonMonoxide runs the suite's longest single
// simulation (carbon monoxide: 256 nodes, 13 channels, ~107k trace
// events) on the single-threaded kernel and on the sharded kernel —
// the tentpole intra-run parallelism number. Every row produces the
// bit-identical trace (the golden-digest tests enforce it); only the
// wall clock may differ. On a single-core host the sharded rows measure
// pure coordination overhead instead of speedup.
func BenchmarkShardedCarbonMonoxide(b *testing.B) {
	shardCounts := []int{1, 2, 4, 8, 16}
	var digest uint64
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := escat.RunOn(core.Config{Seed: 1, Shards: shards},
					escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide())
				if err != nil {
					b.Fatal(err)
				}
				d := res.Trace.Digest()
				if digest == 0 {
					digest = d
				} else if d != digest {
					b.Fatalf("shards=%d: digest %#x, want %#x — sharding changed the trace", shards, d, digest)
				}
			}
		})
	}
}

func BenchmarkPFSSmallRead(b *testing.B) {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, err := pfs.New(k, pfs.DefaultConfig(m), pablo.Discard)
	if err != nil {
		b.Fatal(err)
	}
	fs.CreateFile("f", 1<<30)
	k.Spawn("p", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", pfs.MAsync)
		for i := 0; i < b.N; i++ {
			if _, err := h.Read(p, 1024); err != nil {
				panic(err)
			}
		}
		h.Close(p)
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPFSStripedTransfer(b *testing.B) {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, err := pfs.New(k, pfs.DefaultConfig(m), pablo.Discard)
	if err != nil {
		b.Fatal(err)
	}
	fs.CreateFile("f", 1<<40)
	k.Spawn("p", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", pfs.MAsync)
		h.SetBuffering(false)
		for i := 0; i < b.N; i++ {
			if _, err := h.Read(p, 1<<20); err != nil { // spans all 16 I/O nodes
				panic(err)
			}
		}
		h.Close(p)
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTraceRecord(b *testing.B) {
	tr := pablo.NewTrace()
	ev := pablo.Event{Node: 1, Op: pablo.OpRead, File: "f", Size: 4096,
		Start: time.Second, Duration: time.Millisecond, Mode: "M_ASYNC"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ev)
	}
}

func BenchmarkDiskService(b *testing.B) {
	a := disk.MustNewArray(disk.DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Service("f", int64(i)*4096, 4096)
	}
}

// ---- derived benchmark suite (internal/iobench) ----

// BenchmarkSuiteKernels runs every canonical access-pattern kernel in
// its best and worst access modes, reporting the virtual completion
// times — the headline output of the paper's proposed benchmark suite.
func BenchmarkSuiteKernels(b *testing.B) {
	cases := []struct {
		kernel iobench.Kernel
		mode   pfs.Mode
	}{
		{iobench.CompulsoryRead, pfs.MUnix},
		{iobench.CompulsoryRead, pfs.MGlobal},
		{iobench.StagingWrite, pfs.MUnix},
		{iobench.StagingWrite, pfs.MAsync},
		{iobench.StridedReload, pfs.MUnix},
		{iobench.StridedReload, pfs.MRecord},
		{iobench.Checkpoint, pfs.MUnix},
		{iobench.ResultFunnel, pfs.MUnix},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/%s", tc.kernel, tc.mode), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				r, err := iobench.Run(iobench.Params{
					Kernel:  tc.kernel,
					Mode:    tc.mode,
					Nodes:   32,
					Request: 128 << 10,
					Volume:  32 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				v = r.Wall.Seconds()
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}
