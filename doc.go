// Package paragonio reproduces "I/O Requirements of Scientific
// Applications: An Evolutionary View" (Smirni, Aydt, Chien, Reed — HPDC
// 1996): a deterministic simulation of the Intel Paragon XP/S and its
// Parallel File System, Pablo-style I/O instrumentation, synthetic
// replicas of the ESCAT and PRISM applications across their code
// versions, and an experiment harness that regenerates every table and
// figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The cache-aware policy advisor — internal/policy classifying traces
// into concrete cache.Tiers recommendations, validated closed-loop by
// the experiments package's advisor family — is catalogued in
// docs/ADVISOR.md; the write-behind flush-policy state machine
// (high-water + idle vs deadline) is documented on internal/cache.
// The benchmark harness in bench_test.go regenerates each artifact:
//
//	go test -bench=Table -benchtime=1x
//	go test -bench=Figure -benchtime=1x
//	go test -bench=Ablation -benchtime=1x
package paragonio
