package paragonio_test

// Scaled-machine runs: the paper's Caltech Paragon was a 16x32 mesh with
// 16 I/O nodes, but its future-work section asks how the I/O balance
// holds up as machines grow. These runs put the simulator on a scaled
// mesh — up to 128x128 with 256 I/O nodes — which is also where the
// sharded kernel's multi-instant sync windows earn their keep: with 256
// I/O lanes the per-instant barrier of the old protocol would dominate.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"paragonio/internal/core"
	"paragonio/internal/mesh"
	"paragonio/internal/pfs"
	"paragonio/internal/workload"
)

// scaledMeshRun executes a staging-style workload on a rows x cols mesh
// with ioNodes I/O nodes: every compute process loops seek/read/write
// rounds against one large striped file at node-distinct offsets, so
// requests fan out across disjoint I/O-node subsets — the access shape
// that keeps many lanes busy inside one sync window.
func scaledMeshRun(rows, cols, ioNodes, nodes, rounds, shards int, window time.Duration) (*core.Result, error) {
	mcfg := mesh.DefaultConfig()
	mcfg.Rows, mcfg.Cols, mcfg.IONodes = rows, cols, ioNodes
	cfg := core.Config{
		Nodes:   nodes,
		Mesh:    &mcfg,
		IONodes: ioNodes,
		Seed:    1,
		Shards:  shards,
		Window:  window,
	}
	return core.Run(cfg, "scaled", fmt.Sprintf("%dx%d", rows, cols),
		func(m *workload.Machine, seed int64) error {
			const fileSize = 1 << 30
			m.FS.CreateFile("field", fileSize)
			m.SpawnNodes(seed, func(n *workload.Node) {
				h, err := m.FS.Open(n.P, n.ID, "field", pfs.MAsync)
				if err != nil {
					panic(err)
				}
				h.SetBuffering(false)
				for r := 0; r < rounds; r++ {
					off := (int64(n.ID)*int64(rounds) + int64(r)) * (1 << 20) % fileSize
					if err := h.Seek(n.P, off); err != nil {
						panic(err)
					}
					if _, err := h.Read(n.P, 1<<20); err != nil {
						panic(err)
					}
					if err := h.Seek(n.P, off); err != nil {
						panic(err)
					}
					if _, err := h.Write(n.P, 256<<10); err != nil {
						panic(err)
					}
				}
				h.Close(n.P)
			})
			return nil
		})
}

// TestScaledMeshShardedDigest is the CI smoke leg: a 32x32 mesh with 64
// I/O nodes at `-shards auto` (GOMAXPROCS-equivalent plus a fixed wide
// count) must produce the bit-identical trace of the single-threaded
// kernel. The -race CI job runs this to sweep the window protocol's
// phase-A parallelism on a topology bigger than the paper machine.
func TestScaledMeshShardedDigest(t *testing.T) {
	base, err := scaledMeshRun(32, 32, 64, 64, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Trace.Digest()
	if base.Trace.Len() == 0 {
		t.Fatal("scaled run produced an empty trace")
	}
	auto := runtime.GOMAXPROCS(0)
	if auto < 2 {
		auto = 2
	}
	cases := []struct {
		shards int
		window time.Duration
	}{
		{auto, 0},
		{8, 0},
		{8, 7 * time.Microsecond},
		{72, 0}, // 64 I/O lanes + 8 compute lanes
	}
	for _, tc := range cases {
		res, err := scaledMeshRun(32, 32, 64, 64, 2, tc.shards, tc.window)
		if err != nil {
			t.Fatalf("shards=%d window=%v: %v", tc.shards, tc.window, err)
		}
		if d := res.Trace.Digest(); d != want {
			t.Errorf("shards=%d window=%v: digest %#016x, want %#016x",
				tc.shards, tc.window, d, want)
		}
		if res.Exec != base.Exec {
			t.Errorf("shards=%d window=%v: virtual exec %v, want %v",
				tc.shards, tc.window, res.Exec, base.Exec)
		}
	}
}

// BenchmarkScaledMeshShards is the scaling ladder on the scaled machine:
// a 128x128 mesh with 256 I/O nodes and 256 compute processes, run at
// 1/2/4/8/16 shards. Every row must produce the bit-identical trace; only
// the wall clock may differ. On a single-core host the sharded rows
// measure window-protocol overhead, not speedup — PERFORMANCE.md records
// the honest numbers either way.
func BenchmarkScaledMeshShards(b *testing.B) {
	var digest uint64
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var v float64
			for i := 0; i < b.N; i++ {
				res, err := scaledMeshRun(128, 128, 256, 256, 4, shards, 0)
				if err != nil {
					b.Fatal(err)
				}
				d := res.Trace.Digest()
				if digest == 0 {
					digest = d
				} else if d != digest {
					b.Fatalf("shards=%d: digest %#016x, want %#016x — sharding changed the trace",
						shards, d, digest)
				}
				v = res.Exec.Seconds()
			}
			b.ReportMetric(v, "virtual_s")
		})
	}
}
