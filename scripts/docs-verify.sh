#!/usr/bin/env bash
# docs-verify: extract every ```sh code fence from README.md,
# docs/ADVISOR.md, docs/SERVICE.md, and docs/TIERS.md and execute the
# commands in order, so the documented quickstarts cannot rot. Commands run from the
# repository root in one shell (later commands may read files earlier
# ones wrote, e.g. the iosim -trace / iotrace advise pair); the first
# failure fails the run. Long-running foreground examples (like the
# iosimd daemon quickstart) use ```bash fences, which are documentation
# only.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

{
    echo 'set -euo pipefail'
    for doc in README.md docs/ADVISOR.md docs/SERVICE.md docs/TIERS.md; do
        echo "echo \"### commands from $doc\""
        awk '/^```sh$/ { f = 1; next } /^```$/ { f = 0 } f' "$doc"
    done
} >"$tmp"

bash "$tmp"
echo "docs-verify: all documented commands ran cleanly"
