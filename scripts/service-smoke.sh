#!/usr/bin/env bash
# service-smoke: build iosimd, boot it on an ephemeral port, and walk
# the daemon's contract end to end — health, a real simulate of the
# smallest canonical run (pinned to its golden trace digest), the
# content-addressed cache hit on the identical re-request, a batched
# sweep whose repeated grid dedups entirely against the cache, a
# degraded (fault-injected) run pinned to its own golden digest with a
# structured 400 on a malformed faults block, a log-tier run pinned to
# the log-on golden digest with the log stats block in the response,
# and a kill-and-restart proving the spill directory warm-starts the
# index.
# The daemon is killed on exit either way.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/iosimd" ./cmd/iosimd

# boot LOGFILE ARGS... — start a daemon, wait for the bind line, and
# set $pid / $base from the advertised ephemeral address.
boot() {
    local log=$1
    shift
    "$work/iosimd" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$log" && break
        kill -0 "$pid" 2>/dev/null || { echo "service-smoke: daemon died at boot"; cat "$log"; exit 1; }
        sleep 0.1
    done
    local addr
    addr=$(sed -n 's/^iosimd: listening on //p' "$log" | head -1)
    [ -n "$addr" ] || { echo "service-smoke: daemon never bound"; cat "$log"; exit 1; }
    base="http://$addr"
}

boot "$work/out.log" -spill "$work/spill"
echo "service-smoke: daemon at $base"

# 1. Health.
[ "$(curl -fsS "$base/healthz")" = ok ]

# 2. Simulate prism/C — a fresh run, bit-identical to the golden digest.
req='{"app":"prism","version":"C"}'
first=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/simulate")
echo "$first" | grep -q '"cached":false'
echo "$first" | grep -q '"digest":"0xbc010fbf3debceec"'

# 3. The identical re-request is served from the content-addressed cache.
second=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/simulate")
echo "$second" | grep -q '"cached":true'

# 4. The metrics scrape counted the hit and both requests.
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^iosimd_cache_hits_total 1$'
echo "$metrics" | grep -q '^iosimd_requests_total{endpoint="simulate",code="200"} 2$'

# 5. Sweep a 2-point grid. The prism/C point is already cached from
#    step 2, so one point must dedup against the result cache while
#    prism/A runs fresh; the NDJSON stream is plan-first, done-last.
sweep_req='{"app":"prism","versions":["A","C"]}'
sweep1=$(curl -fsSN -X POST -H 'Content-Type: application/json' -d "$sweep_req" "$base/v1/sweep")
echo "$sweep1" | head -1 | grep -q '"plan":true'
echo "$sweep1" | head -1 | grep -q '"points":2'
echo "$sweep1" | grep -q '"dedup":"cache"'
echo "$sweep1" | tail -1 | grep -q '"done":true'

# 6. The identical grid replayed: every point is a dedup hit, zero
#    engine runs — the summary and the dedup counter both say so.
sweep2=$(curl -fsSN -X POST -H 'Content-Type: application/json' -d "$sweep_req" "$base/v1/sweep")
echo "$sweep2" | tail -1 | grep -q '"dedup_cache":2'
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^iosimd_sweep_dedup_total{source="cache"} 3$'

# 7. Degraded run: the same prism/C with a failed disk is a distinct
#    fresh run with its own pinned golden digest — fault plans are part
#    of the content address, and the fault-runs counter ticks.
fault_req='{"app":"prism","version":"C","faults":[{"kind":"disk-fail","at_ms":1000,"ionode":0}]}'
degraded=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$fault_req" "$base/v1/simulate")
echo "$degraded" | grep -q '"cached":false'
echo "$degraded" | grep -q '"digest":"0x9ce1a397b722477e"'
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^iosimd_fault_runs_total 1$'

# 8. A malformed faults block is a structured 400: stable error code,
#    offending field named.
bad_fault='{"app":"prism","version":"C","faults":[{"kind":"disk-melt"}]}'
code=$(curl -sS -o "$work/err.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d "$bad_fault" "$base/v1/simulate")
[ "$code" = 400 ]
grep -q '"code":"invalid_request"' "$work/err.json"
grep -q '"field":"faults"' "$work/err.json"
grep -q 'unknown kind' "$work/err.json"

# 9. The third cache tier over HTTP: prism/C with the log tier at its
#    defaults is a distinct fresh run pinned to the log-on golden
#    digest, and the response carries the log stats block (the drain
#    finished, so every append drained).
log_req='{"app":"prism","version":"C","tiers":{"log":{}}}'
logged=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$log_req" "$base/v1/simulate")
echo "$logged" | grep -q '"cached":false'
echo "$logged" | grep -q '"digest":"0x162463d0c4c76706"'
echo "$logged" | grep -q '"log":{'
echo "$logged" | grep -q '"Appends":4403'

# 10. Warm restart: kill the daemon, boot a fresh one on the same spill
#    directory, and the old run is answered from disk without touching
#    the engine.
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
boot "$work/out2.log" -spill "$work/spill"
echo "service-smoke: restarted at $base"
grep -q '^iosimd: warm start: 4 result artifacts indexed' "$work/out2.log"
warm=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/simulate")
echo "$warm" | grep -q '"cached":true'
echo "$warm" | grep -q '"digest":"0xbc010fbf3debceec"'
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^iosimd_cache_spill_hits_total 1$'

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "service-smoke: OK"
