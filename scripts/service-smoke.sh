#!/usr/bin/env bash
# service-smoke: build iosimd, boot it on an ephemeral port, and walk
# the daemon's contract end to end — health, a real simulate of the
# smallest canonical run (pinned to its golden trace digest), the
# content-addressed cache hit on the identical re-request, and a
# metrics scrape proving the hit and both requests were counted.
# The daemon is killed on exit either way.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/iosimd" ./cmd/iosimd

"$work/iosimd" -addr 127.0.0.1:0 >"$work/out.log" 2>&1 &
pid=$!

# Wait for the bind line and extract the advertised address.
for _ in $(seq 1 100); do
    grep -q 'listening on' "$work/out.log" && break
    kill -0 "$pid" 2>/dev/null || { echo "service-smoke: daemon died at boot"; cat "$work/out.log"; exit 1; }
    sleep 0.1
done
addr=$(sed -n 's/^iosimd: listening on //p' "$work/out.log" | head -1)
[ -n "$addr" ] || { echo "service-smoke: daemon never bound"; cat "$work/out.log"; exit 1; }
base="http://$addr"
echo "service-smoke: daemon at $base"

# 1. Health.
[ "$(curl -fsS "$base/healthz")" = ok ]

# 2. Simulate prism/C — a fresh run, bit-identical to the golden digest.
req='{"app":"prism","version":"C"}'
first=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/simulate")
echo "$first" | grep -q '"cached":false'
echo "$first" | grep -q '"digest":"0xbc010fbf3debceec"'

# 3. The identical re-request is served from the content-addressed cache.
second=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/simulate")
echo "$second" | grep -q '"cached":true'

# 4. The metrics scrape counted the hit and both requests.
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^iosimd_cache_hits_total 1$'
echo "$metrics" | grep -q '^iosimd_requests_total{endpoint="simulate",code="200"} 2$'

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "service-smoke: OK"
