// custom_workload shows how to characterize a new application with the
// library — the paper's closing promise that "a comprehensive set of
// parallel file system I/O benchmarks will be derived" from such
// characterizations. It builds a synthetic out-of-core matrix transpose:
// 24 nodes write column panels, synchronize, then read row panels
// (a strided pattern that defeats naive striping), and reports the
// profile plus the advisor's verdict.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/policy"
	"paragonio/internal/report"
	"paragonio/internal/workload"
)

const (
	nodes    = 24
	panels   = 24        // square panel grid
	panelSz  = 256 << 10 // bytes per panel
	matrixSz = int64(panels) * int64(panels) * panelSz
)

func main() {
	res, err := core.Run(core.Config{Nodes: nodes, Seed: 7}, "transpose", "v1", script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core transpose of a %d MB matrix on %d nodes: %.1f s virtual\n\n",
		matrixSz>>20, nodes, res.Exec.Seconds())

	var rows [][]string
	for _, s := range analysis.IOTimeShares(res.Trace) {
		if s.Count == 0 {
			continue
		}
		rows = append(rows, []string{s.Op.String(), fmt.Sprintf("%.1f%%", s.Percent),
			fmt.Sprintf("%d", s.Count), fmt.Sprintf("%.2f s", s.Total.Seconds())})
	}
	if err := report.Table(os.Stdout, "I/O profile",
		[]string{"Operation", "share", "count", "total"}, rows); err != nil {
		log.Fatal(err)
	}

	// Reads during the transpose phase are strided: column panel k of
	// row r lives panels*panelSz apart. Show the burstiness and the
	// advisor's reaction.
	fmt.Printf("\nwrite burstiness (CV of inter-arrivals): %.2f\n",
		analysis.Burstiness(res.Trace, pablo.OpWrite))
	fmt.Printf("read burstiness:                         %.2f\n\n",
		analysis.Burstiness(res.Trace, pablo.OpRead))

	recs := policy.AdviseAll(policy.Classify(res.Trace), policy.Options{})
	if len(recs) == 0 {
		fmt.Println("advisor: access pattern already fits the file system")
		return
	}
	rows = rows[:0]
	for _, r := range recs {
		rows = append(rows, []string{r.File, r.Kind.String(), r.Reason})
	}
	if err := report.Table(os.Stdout, "Advisor findings",
		[]string{"File", "Recommendation", "Why"}, rows); err != nil {
		log.Fatal(err)
	}
}

func script(m *workload.Machine, seed int64) error {
	all := m.NewCollective("all", nodes)
	m.SpawnNodes(seed, func(n *workload.Node) {
		// Pass 1: each node computes and writes one column of panels.
		h, err := m.FS.Open(n.P, n.ID, "matrix", pfs.MAsync)
		if err != nil {
			panic(err)
		}
		for row := 0; row < panels; row++ {
			n.ComputeJitter(200*time.Millisecond, 50*time.Millisecond)
			off := (int64(row)*int64(panels) + int64(n.ID)) * panelSz
			if err := h.Seek(n.P, off); err != nil {
				panic(err)
			}
			if _, err := h.Write(n.P, panelSz); err != nil {
				panic(err)
			}
		}
		all.Barrier(n)

		// Pass 2: read back one row of panels — a stride of
		// panels*panelSz, the transpose's hard direction.
		for col := 0; col < panels; col++ {
			off := (int64(n.ID)*int64(panels) + int64(col)) * panelSz
			if err := h.Seek(n.P, off); err != nil {
				panic(err)
			}
			if _, err := h.Read(n.P, panelSz); err != nil {
				panic(err)
			}
			n.ComputeJitter(100*time.Millisecond, 20*time.Millisecond)
		}
		if err := h.Close(n.P); err != nil {
			panic(err)
		}
	})
	return nil
}
