// mode_comparison exercises every PFS access mode on the same workload
// shape — 32 nodes collectively reading a striped 32 MB file — and
// reports the wall time and summed operation time of each. It makes the
// paper's section 3.2 concrete: mode choice alone swings performance by
// orders of magnitude.
//
//	go run ./examples/mode_comparison
package main

import (
	"fmt"
	"log"
	"os"

	"paragonio/internal/core"
	"paragonio/internal/pfs"
	"paragonio/internal/report"
	"paragonio/internal/workload"
)

const (
	nodes    = 32
	fileSize = 32 << 20
	request  = 2 * pfs.DefaultStripeUnit // 128 KB: two stripes, the sweet spot
)

func main() {
	type outcome struct {
		mode   string
		wall   float64
		summed float64
	}
	var outcomes []outcome
	for _, mode := range []pfs.Mode{pfs.MUnix, pfs.MAsync, pfs.MRecord, pfs.MGlobal, pfs.MSync, pfs.MLog} {
		res, err := core.Run(core.Config{Nodes: nodes, Seed: 1}, "modes", mode.String(),
			func(m *workload.Machine, seed int64) error { return script(m, mode) })
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{
			mode:   mode.String(),
			wall:   res.Exec.Seconds(),
			summed: res.IOTime().Seconds(),
		})
	}
	var rows [][]string
	for _, o := range outcomes {
		rows = append(rows, []string{o.mode,
			fmt.Sprintf("%.2f s", o.wall), fmt.Sprintf("%.2f s", o.summed)})
	}
	if err := report.Table(os.Stdout,
		fmt.Sprintf("%d nodes reading a %d MB striped file in %d KB requests",
			nodes, fileSize>>20, request>>10),
		[]string{"Mode", "wall time", "summed op time"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading guide:")
	fmt.Println("  M_UNIX   — atomicity token serializes everything")
	fmt.Println("  M_ASYNC  — nodes read disjoint slabs with no coordination: fastest")
	fmt.Println("  M_RECORD — node-ordered stripe-aligned records: nearly as fast, structured")
	fmt.Println("  M_GLOBAL — everyone gets *the same* data once per round (different semantics:")
	fmt.Println("             one disk I/O + broadcast per round)")
	fmt.Println("  M_SYNC   — shared pointer, node-ordered rounds: synchronization-bound")
	fmt.Println("  M_LOG    — shared pointer, FCFS: serialization without the order guarantees")
}

// script has every node move fileSize/nodes bytes according to the mode's
// semantics: disjoint slabs where pointers allow it, collective rounds
// otherwise.
func script(m *workload.Machine, mode pfs.Mode) error {
	m.FS.CreateFile("data", fileSize)
	ids := make([]int, nodes)
	for i := range ids {
		ids[i] = i
	}
	group, err := m.FS.NewGroup(ids)
	if err != nil {
		return err
	}
	perNode := int64(fileSize / nodes)
	rounds := int(perNode / request)
	m.SpawnNodes(1, func(n *workload.Node) {
		// Open collectively in every mode so the comparison isolates the
		// data-path semantics (32 individual opens would serialize at the
		// metadata service and swamp the differences — itself a lesson
		// from the paper's version A profiles).
		h, err := group.Gopen(n.P, n.ID, "data", mode)
		if err != nil {
			panic(err)
		}
		h.SetBuffering(false)
		// Per-process-pointer modes read a private slab; shared-pointer
		// and record modes just issue their rounds.
		if mode == pfs.MUnix || mode == pfs.MAsync {
			if err := h.Seek(n.P, int64(n.ID)*perNode); err != nil {
				panic(err)
			}
		}
		for r := 0; r < rounds; r++ {
			if _, err := h.Read(n.P, request); err != nil {
				panic(err)
			}
		}
		if err := h.Close(n.P); err != nil {
			panic(err)
		}
	})
	return nil
}
