// prism_checkpoint runs the PRISM Navier-Stokes workload (version C) and
// renders its write timeline — the five checkpoint bursts of Figure 9 —
// plus the per-phase I/O breakdown and the time-window summary around
// one checkpoint.
//
//	go run ./examples/prism_checkpoint
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/apps/prism"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

func main() {
	d := prism.TestProblem()
	fmt.Printf("PRISM %s: %d elements, Re=%d, %d steps, checkpoint every %d steps, %d nodes\n\n",
		d.Name, d.Elements, d.Reynolds, d.Steps, d.CheckpointEvery, d.Nodes)

	res, err := prism.Run(d, prism.VersionC(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution time %.0f s; %d traced events\n\n", res.Exec.Seconds(), res.Trace.Len())

	// The write timeline: small measurement/history/statistics writes as
	// a continuous band, with %d-record checkpoint bursts above them.
	pts := analysis.SizeTimeline(res.Trace, pablo.OpWrite)
	series := report.Series{Name: "writes", Glyph: 'w'}
	for _, p := range pts {
		series.Points = append(series.Points, report.Point{X: p.T.Seconds(), Y: p.V})
	}
	plot := report.Plot{
		Title:  "Write sizes over execution time (the paper's Figure 9)",
		XLabel: "execution time (s)", YLabel: "bytes", YLog: true,
		Width: 76, Height: 16,
	}
	if err := plot.Render(os.Stdout, []report.Series{series}); err != nil {
		log.Fatal(err)
	}

	// Per-phase accounting.
	fmt.Println()
	var rows [][]string
	for _, ph := range res.Phases {
		sub := analysis.SliceByPhase(res.Trace, ph)
		agg := pablo.AggregateByOp(sub)
		rows = append(rows, []string{
			ph.Name,
			fmt.Sprintf("%.0f-%.0f s", ph.Start.Seconds(), ph.End.Seconds()),
			fmt.Sprintf("%d", agg.TotalCount()),
			fmt.Sprintf("%.1f s", agg.TotalDuration().Seconds()),
			fmt.Sprintf("%.1f MB", float64(agg.BytesWritten)/1e6),
		})
	}
	if err := report.Table(os.Stdout, "Per-phase I/O",
		[]string{"Phase", "window", "ops", "I/O time", "written"}, rows); err != nil {
		log.Fatal(err)
	}

	// Zoom into the window around the third checkpoint with Pablo's
	// time-window summaries.
	fmt.Println()
	ws := pablo.TimeWindows(res.Trace, 100*time.Second)
	rows = rows[:0]
	for _, w := range ws {
		if w.Count[pablo.OpWrite] == 0 {
			continue
		}
		marker := ""
		if w.BytesWritten > 5<<20 {
			marker = "  <-- checkpoint burst"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f-%.0f", w.Start.Seconds(), w.End.Seconds()),
			fmt.Sprintf("%d", w.Count[pablo.OpWrite]),
			fmt.Sprintf("%.2f MB", float64(w.BytesWritten)/1e6) + marker,
		})
	}
	if err := report.Table(os.Stdout, "Write activity per 100 s window",
		[]string{"Window (s)", "writes", "bytes"}, rows); err != nil {
		log.Fatal(err)
	}
}
