// cache_whatif replays the PRISM checkpoint/restart workload (version C)
// on the paper's cache-less machine and then on the same machine with the
// what-if I/O-node buffer cache enabled — first write-behind alone, then
// write-behind plus read-ahead. It prints the execution-time and
// phase-time deltas beside the cache's own counters, and finishes by
// emitting the dirty-queue timeline as tag-2 "cache-sample" SDDF records
// so the second record stream is visible on the wire.
//
//	go run ./examples/cache_whatif
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
	"paragonio/internal/sddf"
)

func main() {
	variants := []struct {
		label string
		cfg   *cache.Config
	}{
		{"no cache (paper machine)", nil},
		{"write-behind", &cache.Config{WriteBehind: true}},
		{"wb + read-ahead", &cache.Config{WriteBehind: true, ReadAhead: 4}},
	}

	d := prism.TestProblem()
	fmt.Printf("PRISM %s, version C, %d nodes: checkpoint writes + restart read\n\n",
		d.Name, d.Nodes)

	var rows [][]string
	var cached *core.Result // last cached run, for the SDDF epilogue
	for _, v := range variants {
		cfg := core.Config{
			Nodes: d.Nodes, Seed: 1, Tiers: cache.Tiers{IONode: v.cfg},
			SampleInterval: 100 * time.Second,
		}
		res, err := prism.RunOn(cfg, d, prism.VersionC())
		if err != nil {
			log.Fatal(err)
		}
		chk := fileTime(res.Trace, pablo.OpWrite, prism.CheckpointFile)
		rst := fileTime(res.Trace, pablo.OpRead, prism.RestartFile)
		row := []string{
			v.label,
			fmt.Sprintf("%.0f", res.Exec.Seconds()),
			fmt.Sprintf("%.1f", res.IOTime().Seconds()),
			fmt.Sprintf("%.1f", chk.Seconds()),
			fmt.Sprintf("%.1f", rst.Seconds()),
		}
		if v.cfg != nil {
			t := res.CacheTotals()
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*t.HitRatio()),
				fmt.Sprintf("%d", t.MaxDirty),
				fmt.Sprintf("%d", t.ForcedFlushStalls))
			cached = res
		} else {
			row = append(row, "-", "-", "-")
		}
		rows = append(rows, row)
	}
	if err := report.Table(os.Stdout, "PRISM C: what-if I/O-node buffer cache",
		[]string{"variant", "exec (s)", "io (s)", "chk write (s)", "rst read (s)",
			"hit", "max dirty", "stalls"}, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Write-behind acknowledges checkpoint records at memory-copy cost and")
	fmt.Println("drains them to the arrays behind the computation; the restart read is")
	fmt.Println("served from the blocks the writes left resident. The deltas above are")
	fmt.Println("the mechanism, the counters are the evidence.")
	fmt.Println()

	// The cache's sampler timeline on the wire: tag-2 cache-sample records
	// beside the tag-1 io-events any SDDF consumer already understands.
	var b strings.Builder
	w := sddf.NewWriter(&b)
	desc := pablo.CacheSampleDescriptor()
	if err := w.Define(desc); err != nil {
		log.Fatal(err)
	}
	for _, s := range cached.Samples {
		for io, dirty := range s.CacheDirty {
			rec, err := pablo.CacheSampleRecord(desc, pablo.CacheSample{
				T: s.T, IONode: io, Dirty: int64(dirty),
				Hits: int64(s.CacheHits), Misses: int64(s.CacheMisses),
				ClientHits:   int64(s.ClientHits),
				ClientMisses: int64(s.ClientMisses),
				Recalls:      int64(s.ClientRecalls),
				StaleAverted: int64(s.ClientStaleAverted),
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	fmt.Printf("cache-sample SDDF stream (%d records; first lines):\n", len(lines)-2)
	for i, line := range lines {
		if i > 6 {
			fmt.Printf("... %d more\n", len(lines)-i)
			break
		}
		fmt.Println(line)
	}
}

// fileTime sums the durations of op events against one file.
func fileTime(t *pablo.Trace, op pablo.Op, file string) time.Duration {
	var d time.Duration
	for _, ev := range t.Events() {
		if ev.Op == op && ev.File == file {
			d += ev.Duration
		}
	}
	return d
}
