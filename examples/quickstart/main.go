// Quickstart: build the simulated Paragon XP/S, run a 16-node program
// that writes and reads a striped file through the PFS, and print the
// captured Pablo trace summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"paragonio/internal/analysis"
	"paragonio/internal/core"
	"paragonio/internal/pfs"
	"paragonio/internal/report"
	"paragonio/internal/workload"
)

func main() {
	// A platform is the machine (16x32 mesh, 16 I/O nodes with RAID-3
	// arrays), the Intel PFS model, and a Pablo tracer, wired together.
	res, err := core.Run(core.Config{Nodes: 16, Seed: 1}, "quickstart", "v1", script)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran on %d nodes; virtual execution time %.2f s; %d traced I/O events\n\n",
		res.Nodes, res.Exec.Seconds(), res.Trace.Len())

	var rows [][]string
	for _, s := range analysis.IOTimeShares(res.Trace) {
		if s.Count == 0 {
			continue
		}
		rows = append(rows, []string{
			s.Op.String(),
			fmt.Sprintf("%.1f%%", s.Percent),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.3f s", s.Total.Seconds()),
		})
	}
	if err := report.Table(os.Stdout, "Where the I/O time went",
		[]string{"Operation", "share", "count", "total"}, rows); err != nil {
		log.Fatal(err)
	}
}

// script is the simulated program: every node writes a disjoint 1 MB
// slab of a shared file through M_ASYNC, synchronizes, and then all
// nodes read the first megabyte collectively through M_GLOBAL (one disk
// read plus a broadcast).
func script(m *workload.Machine, seed int64) error {
	const slab = 1 << 20
	all := m.NewCollective("all", m.Nodes)
	nodes := make([]int, m.Nodes)
	for i := range nodes {
		nodes[i] = i
	}
	group, err := m.FS.NewGroup(nodes)
	if err != nil {
		return err
	}
	m.SpawnNodes(seed, func(n *workload.Node) {
		// Phase 1: concurrent disjoint writes.
		h, err := m.FS.Open(n.P, n.ID, "data", pfs.MAsync)
		if err != nil {
			panic(err)
		}
		if err := h.Seek(n.P, int64(n.ID)*slab); err != nil {
			panic(err)
		}
		if _, err := h.Write(n.P, slab); err != nil {
			panic(err)
		}
		if err := h.Close(n.P); err != nil {
			panic(err)
		}
		all.Barrier(n)

		// Phase 2: everyone needs the same header — use M_GLOBAL so the
		// file system reads it once and broadcasts.
		hg, err := group.Gopen(n.P, n.ID, "data", pfs.MGlobal)
		if err != nil {
			panic(err)
		}
		if _, err := hg.Read(n.P, 1<<20); err != nil {
			panic(err)
		}
		if err := hg.Close(n.P); err != nil {
			panic(err)
		}
	})
	return nil
}
