// escat_evolution replays the paper's eighteen months of ESCAT tuning in
// a few seconds: it runs versions A, B, and C of the electron-scattering
// workload on the full 128-node ethylene problem and shows how the I/O
// profile shifts (Table 2 / Figure 1 of the paper).
//
//	go run ./examples/escat_evolution
package main

import (
	"fmt"
	"log"
	"os"

	"paragonio/internal/analysis"
	"paragonio/internal/apps/escat"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

func main() {
	ds := escat.Ethylene()
	fmt.Printf("ESCAT %s: %d nodes, %d collision channels, %.1f MB quadrature per channel\n\n",
		ds.Name, ds.Nodes, ds.Channels, float64(ds.QuadBytes())/1e6)

	type row struct {
		v      escat.Version
		exec   float64
		iopct  float64
		shares map[pablo.Op]float64
	}
	var rows []row
	for _, v := range escat.PaperVersions() {
		res, err := escat.Run(ds, v, 1)
		if err != nil {
			log.Fatal(err)
		}
		shares := map[pablo.Op]float64{}
		for _, s := range analysis.IOTimeShares(res.Trace) {
			shares[s.Op] = s.Percent
		}
		rows = append(rows, row{v: v, exec: res.Exec.Seconds(), iopct: res.IOPercent(), shares: shares})
		fmt.Printf("version %s (%s): exec %.0f s, I/O %.2f%% of node-time — %s\n",
			v.ID, v.OS, res.Exec.Seconds(), res.IOPercent(), v.Label)
	}
	fmt.Println()

	var table [][]string
	for _, op := range pablo.Ops() {
		r := []string{op.String()}
		for _, rw := range rows {
			r = append(r, fmt.Sprintf("%.2f", rw.shares[op]))
		}
		table = append(table, r)
	}
	if err := report.Table(os.Stdout, "Aggregate I/O time by operation (%), as in the paper's Table 2",
		[]string{"Operation", "A", "B", "C"}, table); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("The story the numbers tell:")
	fmt.Println("  A: 128 nodes open and read the input files concurrently through M_UNIX —")
	fmt.Println("     opens and token-serialized reads dominate.")
	fmt.Println("  B: node zero reads and broadcasts; all nodes write staging data through")
	fmt.Println("     M_UNIX with per-write seeks — shared-pointer seeks take over.")
	fmt.Println("  C: the same writes through the new M_ASYNC mode — seeks vanish, leaving")
	fmt.Printf("     the writes themselves; total execution time falls %.0f%% from A.\n",
		100*(rows[0].exec-rows[2].exec)/rows[0].exec)
}
