// replay_study performs the machine-configuration study the paper lists
// as future work: capture one application's I/O trace, then replay its
// request stream — data path only, think time preserved — against
// machines with different I/O node counts and stripe units, without
// re-running the application.
//
//	go run ./examples/replay_study
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/core"
	"paragonio/internal/replay"
	"paragonio/internal/report"
)

func main() {
	// Capture: a reduced ESCAT version C run (the tuned code).
	d := escat.Ethylene()
	d.Nodes = 32
	d.Cycles = 12
	d.CycleCompute = 6 * time.Second
	d.CycleJitter = time.Second
	d.SetupCompute = 3 * time.Second
	d.EnergyCompute = 5 * time.Second
	d.EnergyJitter = 2 * time.Second
	fmt.Println("capturing: ESCAT version C, 32 nodes, on the paper's machine")
	res, err := escat.Run(d, escat.VersionC(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d traced events, %.0f s virtual execution\n\n", res.Trace.Len(), res.Exec.Seconds())

	// Replay across I/O node counts.
	var rows [][]string
	for _, ion := range []int{2, 4, 8, 16, 32} {
		out, err := replay.Replay(res.Trace, replay.Config{
			Platform:     core.Config{IONodes: ion},
			PreserveGaps: false, // pure storage stress
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", ion),
			fmt.Sprintf("%.2f s", out.ReplayDataTime.Seconds()),
			fmt.Sprintf("%.2f s", out.ReplaySpan.Seconds()),
			fmt.Sprintf("%.2fx", out.Speedup()),
		})
	}
	if err := report.Table(os.Stdout,
		"Replaying the captured request stream across I/O node counts",
		[]string{"I/O nodes", "data-op time", "span", "speedup vs original"}, rows); err != nil {
		log.Fatal(err)
	}

	// Replay across stripe units.
	fmt.Println()
	rows = rows[:0]
	for _, su := range []int64{16 << 10, 64 << 10, 256 << 10} {
		out, err := replay.Replay(res.Trace, replay.Config{
			Platform:     core.Config{StripeUnit: su},
			PreserveGaps: false,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d KB", su>>10),
			fmt.Sprintf("%.2f s", out.ReplayDataTime.Seconds()),
			fmt.Sprintf("%.2f s", out.ReplaySpan.Seconds()),
		})
	}
	if err := report.Table(os.Stdout,
		"Replaying across stripe units (16 I/O nodes)",
		[]string{"stripe unit", "data-op time", "span"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("note: the replay reissues the recorded (offset, size) stream through")
	fmt.Println("M_ASYNC, so it isolates striping/disk effects from the mode-level")
	fmt.Println("serialization the original run already captured.")
}
