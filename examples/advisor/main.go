// advisor closes the paper's loop: it runs ESCAT version A (the
// untuned code), lets the policy advisor analyze the trace, prints the
// recommendations — and then verifies them by running version C (which
// embodies exactly those changes) and comparing.
//
// This is the paper's section 7 argument made executable: the eighteen
// months of hand-tuning the study documents is mechanically derivable
// from the version A trace.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/policy"
	"paragonio/internal/report"
)

func main() {
	// A reduced ethylene problem keeps this example snappy while
	// preserving every access pattern.
	d := escat.Ethylene()
	d.Nodes = 32
	d.Cycles = 12
	d.CycleCompute = 8 * time.Second
	d.CycleJitter = 2 * time.Second
	d.SetupCompute = 4 * time.Second
	d.EnergyCompute = 10 * time.Second
	d.EnergyJitter = 3 * time.Second

	fmt.Println("step 1: run the untuned code (version A) under Pablo instrumentation")
	a, err := escat.Run(d, escat.VersionA(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exec %.0f s, summed I/O %.0f s (%.2f%% of node-time)\n\n",
		a.Exec.Seconds(), a.IOTime().Seconds(), a.IOPercent())

	fmt.Println("step 2: classify the trace and ask the advisor")
	recs := policy.AdviseAll(policy.Classify(a.Trace), policy.Options{})
	var rows [][]string
	for _, r := range recs {
		rows = append(rows, []string{r.File, r.Kind.String(), r.Reason})
	}
	if err := report.Table(os.Stdout, "",
		[]string{"File", "Recommendation", "Why"}, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("step 3: version C is precisely these changes applied by hand —")
	fmt.Println("        node-zero read + broadcast for the inputs, M_ASYNC staging")
	fmt.Println("        writes, M_RECORD reloads, gopen everywhere. Run it:")
	c, err := escat.Run(d, escat.VersionC(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exec %.0f s (%.0f%% faster), summed I/O %.0f s (%.1fx less)\n",
		c.Exec.Seconds(),
		100*(a.Exec-c.Exec).Seconds()/a.Exec.Seconds(),
		c.IOTime().Seconds(),
		a.IOTime().Seconds()/c.IOTime().Seconds())

	fmt.Println()
	fmt.Println("step 4: the advisor has nothing left to say about the input files:")
	crecs := policy.AdviseAll(policy.Classify(c.Trace), policy.Options{})
	var remaining int
	for _, r := range crecs {
		if r.Kind == policy.UseGlobalRead || r.Kind == policy.UseAsyncWrites {
			remaining++
		}
	}
	fmt.Printf("  global-read / async-write findings on version C: %d (was %d on A)\n",
		remaining, countKinds(recs, policy.UseGlobalRead, policy.UseAsyncWrites))
}

func countKinds(recs []policy.Recommendation, kinds ...policy.Kind) int {
	var n int
	for _, r := range recs {
		for _, k := range kinds {
			if r.Kind == k {
				n++
			}
		}
	}
	return n
}
