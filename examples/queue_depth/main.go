// queue_depth looks underneath the paper's Figure 5: it runs the ESCAT
// staging phase in versions B (M_UNIX) and C (M_ASYNC) with a
// utilization sampler attached, and plots the file-token queue depth
// over time. B's multi-second seeks are exactly this queue; C's
// M_ASYNC writes never form one.
//
//	go run ./examples/queue_depth
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/core"
	"paragonio/internal/report"
)

func main() {
	d := escat.Ethylene()
	d.Nodes = 64
	d.Cycles = 10
	d.CycleCompute = 10 * time.Second
	d.CycleJitter = 2 * time.Second
	d.SetupCompute = 2 * time.Second
	d.EnergyCompute = 5 * time.Second
	d.EnergyJitter = 2 * time.Second

	for _, v := range []escat.Version{escat.VersionB(), escat.VersionC()} {
		cfg := core.Config{Nodes: d.Nodes, Seed: 1, SampleInterval: 2 * time.Second}
		res, err := escat.RunOn(cfg, d, v)
		if err != nil {
			log.Fatal(err)
		}
		series := report.Series{Name: "token queue depth", Glyph: 'q'}
		maxQ := 0
		for _, s := range res.Samples {
			series.Points = append(series.Points,
				report.Point{X: s.T.Seconds(), Y: float64(s.TokenQueue)})
			if s.TokenQueue > maxQ {
				maxQ = s.TokenQueue
			}
		}
		p := report.Plot{
			Title: fmt.Sprintf(
				"Version %s (%s staging writes): file-token queue depth over time (max %d)",
				v.ID, v.Phase2Mode, maxQ),
			XLabel: "execution time (s)", YLabel: "waiters",
			Width: 74, Height: 12,
		}
		if err := p.Render(os.Stdout, []report.Series{series}); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Version B's atomicity token forms a deep queue at every synchronized")
	fmt.Println("write step — the queueing that surfaces as multi-second seek durations")
	fmt.Println("in the paper's Figure 5. M_ASYNC (version C) has no token to queue on.")
}
