module paragonio

go 1.22
